"""Ablation: distributed vs centralized revocation (paper §6 future work).

Runs the paper deployment's detection phase, then feeds the *same* honest
alert stream to (a) the centralized base station and (b) the gossip-based
distributed protocol, and compares detection rate, false positives, and —
the new cost of decentralization — agreement between beacons' local
revocation verdicts.
"""

from repro.core.distributed import DistributedConfig, DistributedRevocationProtocol
from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData


def compare(p_prime=0.3, seed=47):
    pipeline = SecureLocalizationPipeline(
        PipelineConfig(p_prime=p_prime, seed=seed)
    )
    central = pipeline.run()
    malicious = {b.node_id for b in pipeline.malicious_beacons}
    benign = {b.node_id for b in pipeline.benign_beacons}

    # Replay the honest accepted alerts through the distributed protocol
    # over the same deployed field (colluders flood their quota too).
    proto = DistributedRevocationProtocol(
        pipeline.network,
        DistributedConfig(
            tau_report=pipeline.config.tau_report,
            tau_alert=pipeline.config.tau_alert,
        ),
    )
    for record in pipeline.base_station.log:
        if record.reason in ("accepted", "quota-exceeded"):
            proto.publish_alert(record.detector_id, record.target_id)
    proto.run_intervals(4)

    quorum = max(1, len(proto.beacon_ids) // 2)
    fig = FigureData(
        figure_id="ablation_distributed",
        title="Centralized vs distributed revocation",
        x_label="scheme (0=centralized, 1=distributed@majority)",
        y_label="rate",
        notes=(
            f"P'={p_prime}; distributed uses majority quorum "
            f"({quorum}/{len(proto.beacon_ids)} beacons); "
            f"agreement={proto.agreement():.3f}"
        ),
    )
    det = fig.new_series("detection rate")
    det.append(0, central.detection_rate)
    det.append(1, proto.detection_rate(malicious, quorum=quorum))
    fp = fig.new_series("false positive rate")
    fp.append(0, central.false_positive_rate)
    fp.append(1, proto.false_positive_rate(benign, quorum=quorum))
    agree = fig.new_series("agreement")
    agree.append(0, 1.0)
    agree.append(1, proto.agreement())
    return fig


def test_ablation_distributed(run_once, save_figure):
    fig = run_once(compare)
    save_figure(fig)
    det = fig.series["detection rate"]
    # Decentralization must not collapse detection at majority quorum.
    assert det.y_at(1) >= det.y_at(0) - 0.25
    # False positives stay bounded by the same quota mechanism.
    fp = fig.series["false positive rate"]
    assert fp.y_at(1) <= fp.y_at(0) + 0.1
    # Beacons on a (mostly) connected graph largely agree.
    assert fig.series["agreement"].y_at(1) > 0.5
