"""Figure 4: cumulative distribution of round-trip time (no attacks).

Paper series: one CDF over 10,000 RTT measurements; reports x_min, x_max,
and a detectability margin of ~4.5 bit transmission times (1 bit = 384 CPU
cycles).
"""

from repro.experiments import figures
from repro.sim.timing import BIT_TIME_CYCLES


def test_figure04_rtt_cdf(run_once, save_figure):
    fig = run_once(figures.figure04_rtt_cdf, samples=10_000, seed=0)
    save_figure(fig)
    cdf = fig.series["cdf"]
    # Paper-shape checks: tight support, proper CDF.
    width_bits = (cdf.x[-1] - cdf.x[0]) / BIT_TIME_CYCLES
    assert width_bits <= 4.5
    assert cdf.y[-1] == 1.0
