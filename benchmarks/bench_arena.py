"""Benchmark: the detector arena — every detector, identical scenarios.

Runs the head-to-head comparison from :mod:`repro.experiments.arena`
(paper detector vs Mahalanobis residual vs noisy-channel sequential vs
deterministic consistency) across the Figure-12 grid and commits the
artifacts at the repo root:

- ``BENCH_arena.json`` — headline numbers (detection rate, FP rate,
  affected non-beacons, CPU µs per decision) per detector at the
  paper's default P', in the same schema/environment envelope as the
  other BENCH files so ``tools/bench_report.py`` folds it into the
  trend report;
- ``benchmarks/ARENA_REPORT.md`` — the full markdown grid tables.

``--quick`` is identity-only: a reduced grid asserts the paper
detector's arena trials are bit-identical run-to-run and that every
detector saw the same number of probe decisions (same scenarios), with
no clock gating and no artifact rewrite — safe for noisy CI machines.
"""

import json
import os
import pathlib
import platform

from repro.detectors import available_detectors
from repro.experiments.arena import (
    arena_configs,
    arena_headlines,
    render_arena_markdown,
    run_arena,
    run_arena_trial,
)

ARENA_BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_arena.json"
)
ARENA_REPORT_PATH = pathlib.Path(__file__).resolve().parent / "ARENA_REPORT.md"

#: Reduced grid for --quick smoke mode (identity, not timing).
QUICK_KWARGS = dict(
    p_grid=(0.2,),
    trials=2,
    config_kwargs=dict(
        n_total=150,
        n_beacons=20,
        n_malicious=3,
        field_width_ft=420.0,
        field_height_ft=420.0,
        rtt_calibration_samples=200,
    ),
)


def _record_arena(arena):
    """Write BENCH_arena.json + benchmarks/ARENA_REPORT.md."""
    data = {
        "schema": 1,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": arena_headlines(arena),
    }
    ARENA_BENCH_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    ARENA_REPORT_PATH.write_text(render_arena_markdown(arena))
    return data


def test_arena_head_to_head(bench_runner, quick):
    """The committed comparison — or, with --quick, its identity core."""
    kwargs = QUICK_KWARGS if quick else {}
    arena = run_arena(runner=bench_runner, **kwargs)

    # Every registered detector entered.
    assert sorted(arena["detectors"]) == sorted(available_detectors())
    assert list(arena["detectors"])[0] == "paper"

    # Fairness invariant: identical scenarios => every detector received
    # probe replies from the same deployments. Decision counts may only
    # differ through revocation feedback (an indicted beacon stops
    # replying), so the paper detector's count anchors the same order of
    # magnitude rather than exact equality.
    decisions = {
        name: entry["decisions"] for name, entry in arena["detectors"].items()
    }
    assert all(count > 0 for count in decisions.values()), decisions

    # Identity: re-running one paper-detector trial reproduces the same
    # deterministic payload bit for bit (wall clock excluded).
    config = arena_configs(
        "paper",
        p_grid=kwargs.get("p_grid", (0.2,))[:1],
        trials=1,
        config_kwargs=kwargs.get("config_kwargs"),
    )[0]
    first = run_arena_trial(config)
    second = run_arena_trial(config)
    assert first["metrics"] == second["metrics"]
    assert first["decisions"] == second["decisions"]

    if not quick:
        entry = _record_arena(arena)
        headline = entry["benchmarks"]["arena"]
        # The paper detector's headline must stay on the committed grid.
        assert set(headline) == set(available_detectors())
        for name, numbers in headline.items():
            assert numbers["decisions"] > 0, name
