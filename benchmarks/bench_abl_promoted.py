"""Ablation: detection with promoted beacons (paper §2.3 open problem).

Compares the naive fixed-threshold detector against the generation-aware
detector on a population of *honest* promoted anchors (whose declared
locations carry accumulated estimation error) plus lying anchors. The
naive detector's false-positive rate explodes with generation; the
generation-aware detector stays clean at the cost of a higher minimum
detectable lie — quantifying the paper's "error accumulates" warning.
"""

import random

from repro.core.promoted import GenerationAwareDetector, PromotedAnchor
from repro.core.signal_detector import MaliciousSignalDetector
from repro.experiments.series import FigureData
from repro.utils.geometry import Point


def sweep_generations(max_gen=4, trials=400, base_error=10.0, lie_ft=120.0, seed=61):
    rng = random.Random(seed)
    fig = FigureData(
        figure_id="ablation_promoted",
        title="Detection with promoted beacons: naive vs generation-aware",
        x_label="target anchor generation",
        y_label="rate",
        notes=f"honest error <= gen*{base_error} ft; lie = {lie_ft} ft",
    )
    naive_fp = fig.new_series("naive false-positive rate")
    aware_fp = fig.new_series("generation-aware false-positive rate")
    aware_det = fig.new_series("generation-aware detection of lie")

    naive = MaliciousSignalDetector(max_error_ft=base_error)
    aware = GenerationAwareDetector(max_error_ft=base_error)

    for gen in range(max_gen + 1):
        n_fp = a_fp = a_det = 0
        for _ in range(trials):
            detector = PromotedAnchor(1, Point(0.0, 0.0), generation=0)
            true_pos = Point(rng.uniform(60, 140), rng.uniform(-40, 40))
            honest_decl = Point(
                true_pos.x + rng.uniform(-1, 1) * gen * base_error, true_pos.y
            )
            measured = detector.declared_location.distance_to(
                true_pos
            ) + rng.uniform(-base_error, base_error)

            honest = PromotedAnchor(2, honest_decl, generation=gen)
            if naive.is_malicious(
                detector.declared_location, honest_decl, measured
            ):
                n_fp += 1
            if aware.check(detector, honest, measured).is_malicious:
                a_fp += 1

            liar_decl = Point(honest_decl.x + lie_ft, honest_decl.y)
            liar = PromotedAnchor(3, liar_decl, generation=gen)
            if aware.check(detector, liar, measured).is_malicious:
                a_det += 1
        naive_fp.append(gen, n_fp / trials)
        aware_fp.append(gen, a_fp / trials)
        aware_det.append(gen, a_det / trials)
    return fig


def test_ablation_promoted(run_once, save_figure):
    fig = run_once(sweep_generations)
    save_figure(fig)
    naive_fp = fig.series["naive false-positive rate"]
    aware_fp = fig.series["generation-aware false-positive rate"]
    aware_det = fig.series["generation-aware detection of lie"]
    # Naive detector falsely accuses honest promoted anchors...
    assert naive_fp.y_at(3) > 0.3
    # ...the generation-aware detector does not...
    assert max(aware_fp.y) == 0.0
    # ...while still catching a 120 ft lie at every generation tested.
    assert min(aware_det.y) > 0.9
