"""Figure 8: average number of affected non-beacon nodes N' vs P'.

Paper series: (tau, m) combinations after revocation. Shape: N' peaks at a
small P' and stays in single digits; larger tau raises the peak, larger m
lowers it.
"""

from repro.experiments import figures


def test_figure08_affected(run_once, save_figure):
    fig = run_once(figures.figure08_affected_vs_pprime)
    save_figure(fig)
    peak = lambda label: max(fig.series[label].y)  # noqa: E731
    assert peak("tau=4, m=8") > peak("tau=2, m=8")
    assert peak("tau=2, m=8") < peak("tau=2, m=4")
    assert max(peak(label) for label in fig.series) < 15
