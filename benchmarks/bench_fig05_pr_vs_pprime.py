"""Figure 5: detection probability P_r vs the attacker's P'.

Paper series: P_r = 1 - (1 - P')^m for m = 1, 2, 4, 8. Shape: P_r rises
with P'; more detecting IDs dominate pointwise.
"""

from repro.experiments import figures


def test_figure05_pr_vs_pprime(run_once, save_figure):
    fig = run_once(figures.figure05_detection_vs_pprime)
    save_figure(fig)
    assert fig.series["m=8"].y_at(0.2) > fig.series["m=1"].y_at(0.2)
    assert fig.series["m=8"].y_at(0.5) > 0.99
