"""Ablation: what location attacks cost geographic routing (GPSR).

The paper's introduction motivates secure localization via geographic
routing. This bench quantifies it end to end: run the full localization
pipeline, build GPSR position tables from the resulting estimates, and
compare delivery ratios for (a) ground-truth positions, (b) positions
estimated *with* the defence, and (c) positions estimated with the
defence disabled (no detection, no revocation, no replay filters' effect
on acceptance — attackers' references accepted wholesale).
"""

import random

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.series import FigureData
from repro.routing.gpsr import GpsrRouter
from repro.routing.metrics import delivery_ratio
from repro.routing.table import PositionTable


def _estimates(pipeline):
    return {
        agent.node_id: agent.estimated_position
        for agent in pipeline.agents
        if agent.estimated_position is not None
    }


def compare_routing(p_prime=0.4, seed=53, n_pairs=150):
    cfg = dict(
        n_total=500,
        n_beacons=60,
        n_malicious=6,
        field_width_ft=700.0,
        field_height_ft=700.0,
        p_prime=p_prime,
        seed=seed,
        rtt_calibration_samples=500,
        wormhole_endpoints=((80.0, 80.0), (600.0, 500.0)),
        location_lie_ft=250.0,
    )
    defended = SecureLocalizationPipeline(PipelineConfig(**cfg))
    defended.run()

    undefended_cfg = dict(cfg)
    undefended_cfg.update(
        m_detecting_ids=0,
        collusion=False,
        tau_alert=10_000,  # revocation never triggers
        wormhole_p_d=0.0,  # replay filters blind
    )
    undefended = SecureLocalizationPipeline(PipelineConfig(**undefended_cfg))
    undefended.run()

    rng = random.Random(seed)
    net = defended.network
    ids = [n.node_id for n in net.nodes()]
    pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(n_pairs)]

    tables = {
        "ground truth": PositionTable.ground_truth(net),
        "defended estimates": PositionTable.from_estimates(
            net, _estimates(defended)
        ),
        "undefended estimates": PositionTable.from_estimates(
            undefended.network, _estimates(undefended)
        ),
    }
    fig = FigureData(
        figure_id="ablation_routing",
        title="GPSR delivery ratio under location attacks",
        x_label="position table (0=truth, 1=defended, 2=undefended)",
        y_label="delivery ratio",
        notes=f"P'={p_prime}, lie=250 ft, {n_pairs} random src/dst pairs",
    )
    networks = {
        "ground truth": net,
        "defended estimates": net,
        "undefended estimates": undefended.network,
    }
    for index, (label, table) in enumerate(tables.items()):
        router = GpsrRouter(networks[label], table)
        series = fig.new_series(label)
        series.append(index, delivery_ratio(router, pairs))
    return fig


def test_ablation_routing(run_once, save_figure):
    fig = run_once(compare_routing)
    save_figure(fig)
    truth = fig.series["ground truth"].y[0]
    defended = fig.series["defended estimates"].y[0]
    undefended = fig.series["undefended estimates"].y[0]
    # Ground truth routes essentially everything on this dense field.
    assert truth > 0.9
    # The defence keeps routing close to truth; no defence costs more.
    assert defended >= undefended
    assert defended > 0.6
