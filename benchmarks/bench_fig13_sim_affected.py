"""Figure 13: simulated vs theoretical N' (affected requesters) vs P'.

Paper: "the simulation result has observable but small difference from the
theoretical analysis"; only a few non-beacon nodes end up accepting
malicious signals once revocation is active.
"""

from repro.experiments import figures


def test_figure13_sim_affected(run_once, save_figure, bench_runner):
    fig = run_once(
        figures.figure13_sim_affected,
        p_grid=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8),
        trials=2,
        runner=bench_runner,
    )
    save_figure(fig)
    sim = fig.series["simulation"]
    # Shape: single digits throughout; large P' gets the beacon revoked,
    # so N' collapses rather than growing with P'.
    assert max(sim.y) < 15
    assert sim.y_at(0.8) <= max(sim.y)
