"""Figure 10: probability a benign beacon's report counter exceeds tau'.

Paper series: N_c in {1, 5, 10, 15, 20} with N = 10,000, N_b = 1,010,
N_a = 10, N_w = 10, p_d = 0.9, tau = 1, m = 8, P' = 0.1. Shape: P_o decays
fast in tau'; already near zero at tau' = 2 (the paper's chosen quota).
"""

from repro.experiments import figures


def test_figure10_report_counter(run_once, save_figure):
    fig = run_once(figures.figure10_report_counter)
    save_figure(fig)
    for s in fig.series.values():
        assert s.y_at(2) < 0.05
        assert s.y_at(0) >= s.y_at(5)
