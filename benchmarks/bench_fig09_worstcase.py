"""Figure 9: worst-case N' vs N_c (attacker optimizes P').

Paper series: (m, tau) combinations. Shape: N' rises sharply, peaks
(around N_c ~ tens), then drops and levels off — once enough requesters
contact a malicious beacon, it gets revoked before doing more damage.
"""

from repro.experiments import figures


def test_figure09_worstcase(run_once, save_figure):
    fig = run_once(
        figures.figure09_worstcase_affected,
        nc_grid=tuple(range(0, 255, 10)),
        grid=120,
    )
    save_figure(fig)
    s = fig.series["m=8, tau=1"]
    peak_idx = s.y.index(max(s.y))
    assert 0 < peak_idx < len(s.y) - 1  # rises then falls
    assert s.y[-1] < max(s.y)
    assert max(fig.series["m=8, tau=1"].y) < max(fig.series["m=8, tau=2"].y)
