"""Ablation: per-hardware-pair vs global RTT calibration (§2.2.2).

The paper calibrates RTT on one mote type and notes the technique
"can be easily extended to deal with different types of nodes". This
bench quantifies why the extension is *necessary*: on a mixed fast/slow
fleet, a single global window either misses replays between fast nodes
(window too wide) or falsely flags honest slow pairs (window too tight),
while per-pair calibration does neither.
"""

import random

from repro.core.rtt import RttCalibrationTable
from repro.experiments.series import FigureData
from repro.sim.timing import RttModel, sample_mixed_rtt

FAST = RttModel(base_delay_cycles=2_000.0, jitter_cycles=200.0)
SLOW = RttModel(base_delay_cycles=8_000.0, jitter_cycles=800.0)
#: A replay delay smaller than the fast/slow hardware gap.
SNEAKY_DELAY = 8_000.0


def compare_calibrations(trials=400, seed=97):
    rng = random.Random(seed)
    table = RttCalibrationTable()
    table.register_type("fast", FAST)
    table.register_type("slow", SLOW)
    table.calibrate_all(random.Random(seed + 1), samples=4000)

    strategies = {
        "per-pair windows": lambda req, resp: table.detector_for(req, resp),
        "global window (slow-calibrated)": lambda req, resp: (
            table.detector_for("slow", "slow")
        ),
        "global window (fast-calibrated)": lambda req, resp: (
            table.detector_for("fast", "fast")
        ),
    }
    models = {"fast": FAST, "slow": SLOW}
    pairs = [("fast", "fast"), ("fast", "slow"), ("slow", "slow")]

    fig = FigureData(
        figure_id="ablation_heterogeneous_rtt",
        title="Replay detection on mixed hardware: per-pair vs global windows",
        x_label="strategy index",
        y_label="rate",
        notes=(
            f"replay delay {SNEAKY_DELAY:.0f} cycles; mixed fast/slow fleet; "
            "miss = replay passes, false alarm = honest exchange flagged"
        ),
    )
    miss = fig.new_series("replay miss rate")
    false_alarm = fig.new_series("honest false-alarm rate")
    for index, (label, pick) in enumerate(strategies.items()):
        misses = 0
        alarms = 0
        total = 0
        for _ in range(trials):
            req, resp = pairs[total % len(pairs)]
            detector = pick(req, resp)
            honest = sample_mixed_rtt(models[req], models[resp], rng)
            replayed = sample_mixed_rtt(
                models[req], models[resp], rng, extra_delay_cycles=SNEAKY_DELAY
            )
            if detector.is_replayed(honest):
                alarms += 1
            if not detector.is_replayed(replayed):
                misses += 1
            total += 1
        miss.append(index, misses / total)
        false_alarm.append(index, alarms / total)
    return fig


def test_ablation_heterogeneous_rtt(run_once, save_figure):
    fig = run_once(compare_calibrations)
    save_figure(fig)
    miss = fig.series["replay miss rate"]
    false_alarm = fig.series["honest false-alarm rate"]
    # Per-pair calibration (index 0): no misses for this delay; false
    # alarms only from the finite-calibration tail (well under 1%).
    assert miss.y_at(0) < 0.05
    assert false_alarm.y_at(0) < 0.01
    # Slow-calibrated global window (index 1): misses fast-pair replays.
    assert miss.y_at(1) > 0.2
    # Fast-calibrated global window (index 2): false-flags honest slow pairs.
    assert false_alarm.y_at(2) > 0.4
