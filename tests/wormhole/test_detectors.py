"""Tests for wormhole detectors (probabilistic + leashes)."""

import random

import pytest

from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.radio import Reception, Transmission
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector
from repro.wormhole.leashes import GeographicLeashDetector, TemporalLeashDetector


def reception(
    packet=None,
    *,
    via_wormhole=False,
    fake_symptoms=False,
    tx_origin=Point(0, 0),
    arrival_time=None,
    extra_delay=0.0,
    src_id=1,
    dst_id=2,
):
    packet = packet or BeaconPacket(
        src_id=src_id, dst_id=dst_id, claimed_location=(tx_origin.x, tx_origin.y)
    )
    tx = Transmission(
        packet=packet,
        tx_origin=tx_origin,
        departure_time=0.0,
        via_wormhole=via_wormhole,
        fake_wormhole_symptoms=fake_symptoms,
        extra_delay_cycles=extra_delay,
    )
    if arrival_time is None:
        arrival_time = packet_transmission_cycles(packet.size_bits) + extra_delay
    return Reception(
        packet=packet,
        arrival_time=arrival_time,
        measured_distance_ft=50.0,
        transmission=tx,
    )


class TestProbabilisticDetector:
    def test_clean_signal_never_flagged(self):
        d = ProbabilisticWormholeDetector(0.9, random.Random(0))
        assert not any(
            d.detect(reception(), Point(0, 0)) for _ in range(200)
        )

    def test_detection_rate_statistics(self):
        # Distinct (requester, target) pairs: each draws a fresh verdict.
        d = ProbabilisticWormholeDetector(0.9, random.Random(1))
        n = 2000
        hits = sum(
            1
            for i in range(n)
            if d.detect(
                reception(via_wormhole=True, dst_id=100 + i), Point(0, 0)
            )
        )
        assert hits / n == pytest.approx(0.9, abs=0.03)

    def test_pair_verdict_is_sticky(self):
        # The same (requester, target) pair always gets the same verdict —
        # the paper's per-pair (1 - p_d) false-alert model.
        d = ProbabilisticWormholeDetector(0.5, random.Random(5))
        verdicts = {
            d.detect(reception(via_wormhole=True, dst_id=7), Point(0, 0))
            for _ in range(50)
        }
        assert len(verdicts) == 1

    def test_identity_resolver_merges_detecting_ids(self):
        # Probes under different detecting IDs of one beacon share the
        # verdict for a given target.
        owner = {101: 1, 102: 1, 103: 1}
        d = ProbabilisticWormholeDetector(
            0.5,
            random.Random(6),
            identity_resolver=lambda i: owner.get(i, i),
        )
        verdicts = {
            d.detect(reception(via_wormhole=True, dst_id=did), Point(0, 0))
            for did in (101, 102, 103)
        }
        assert len(verdicts) == 1

    def test_fake_symptoms_always_flagged(self):
        d = ProbabilisticWormholeDetector(0.5, random.Random(2))
        assert all(
            d.detect(reception(fake_symptoms=True), Point(0, 0))
            for _ in range(50)
        )

    def test_false_alarm_rate(self):
        d = ProbabilisticWormholeDetector(
            0.9, random.Random(3), false_alarm_rate=0.2
        )
        n = 2000
        hits = sum(1 for _ in range(n) if d.detect(reception(), Point(0, 0)))
        assert hits / n == pytest.approx(0.2, abs=0.04)

    def test_counters(self):
        d = ProbabilisticWormholeDetector(1.0, random.Random(4))
        d.detect(reception(via_wormhole=True), Point(0, 0))
        d.detect(reception(), Point(0, 0))
        assert d.checks == 2
        assert d.flags == 1

    def test_bad_pd_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProbabilisticWormholeDetector(1.5, random.Random(0))


class TestGeographicLeash:
    def test_near_claim_passes(self):
        d = GeographicLeashDetector(comm_range_ft=150.0)
        r = reception(tx_origin=Point(100, 0))
        assert not d.detect(r, Point(0, 0))

    def test_far_claim_flagged(self):
        d = GeographicLeashDetector(comm_range_ft=150.0)
        r = reception(tx_origin=Point(700, 700), via_wormhole=True)
        assert d.detect(r, Point(0, 0))

    def test_slack_allows_boundary(self):
        d = GeographicLeashDetector(comm_range_ft=150.0, slack_ft=20.0)
        r = reception(tx_origin=Point(160, 0))
        assert not d.detect(r, Point(0, 0))

    def test_fake_symptoms_flagged(self):
        d = GeographicLeashDetector(comm_range_ft=150.0)
        assert d.detect(reception(fake_symptoms=True), Point(0, 0))

    def test_leashless_packet_passes(self):
        d = GeographicLeashDetector(comm_range_ft=150.0)
        r = reception(packet=BeaconRequest(src_id=1, dst_id=2))
        assert not d.detect(r, Point(0, 0))

    def test_bad_params_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            GeographicLeashDetector(comm_range_ft=0.0)
        with pytest.raises(ConfigurationError):
            GeographicLeashDetector(comm_range_ft=100.0, slack_ft=-1.0)


class TestTemporalLeash:
    def test_on_time_passes(self):
        d = TemporalLeashDetector(comm_range_ft=150.0)
        assert not d.detect(reception(), Point(0, 0))

    def test_tunnel_latency_flagged(self):
        d = TemporalLeashDetector(comm_range_ft=150.0)
        r = reception(via_wormhole=True, extra_delay=50_000.0)
        assert d.detect(r, Point(0, 0))

    def test_fake_symptoms_flagged(self):
        d = TemporalLeashDetector(comm_range_ft=150.0)
        assert d.detect(reception(fake_symptoms=True), Point(0, 0))

    def test_skew_budget_tolerates_small_delay(self):
        d = TemporalLeashDetector(
            comm_range_ft=150.0, max_clock_skew_cycles=1000.0
        )
        r = reception(extra_delay=500.0)
        assert not d.detect(r, Point(0, 0))

    def test_max_flight_formula(self):
        d = TemporalLeashDetector(
            comm_range_ft=150.0, max_clock_skew_cycles=10.0
        )
        assert d.max_flight_cycles() > 10.0

    def test_bad_params_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TemporalLeashDetector(comm_range_ft=-5.0)
        with pytest.raises(ConfigurationError):
            TemporalLeashDetector(comm_range_ft=10.0, max_clock_skew_cycles=-1.0)
