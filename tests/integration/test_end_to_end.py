"""Cross-module integration scenarios.

Each test wires the real components together (no mocks) and checks a
paper-level claim end to end.
"""

import random

import pytest

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.replay import LocalReplayAttacker, build_wormhole
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.localization.beacon import BeaconService, NonBeaconAgent
from repro.sim.engine import Engine
from repro.sim.messages import BeaconPacket
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


class World:
    """Hand-built small world for precise scenario control."""

    def __init__(self, seed=42, p_d=1.0):
        self.engine = Engine()
        self.rngs = RngRegistry(seed)
        self.net = Network(self.engine, rngs=self.rngs)
        self.km = KeyManager()
        self.bs = BaseStation(
            self.km, RevocationConfig(tau_report=3, tau_alert=1)
        )
        self.cal = calibrate_rtt(
            self.net.rtt_model, self.rngs.stream("cal"), samples=2000
        )
        self.p_d = p_d

    def cascade(self, name):
        return ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                self.p_d, self.rngs.stream(f"wd-{name}")
            ),
            local_replay_detector=LocalReplayDetector(self.cal),
            comm_range_ft=self.net.radio.comm_range_ft,
        )

    def add_detecting(self, node_id, pos, m=4):
        self.km.enroll(node_id, is_beacon=True)
        beacon = DetectingBeacon(
            node_id,
            pos,
            self.km,
            signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
            filter_cascade=self.cascade(node_id),
            base_station=self.bs,
            detecting_ids=self.km.allocate_detecting_ids(node_id, m),
        )
        self.net.add_node(beacon)
        for did in beacon.detecting_ids:
            self.net.add_alias(did, node_id)
        return beacon

    def add_benign(self, node_id, pos):
        self.km.enroll(node_id, is_beacon=True)
        return self.net.add_node(BeaconService(node_id, pos, self.km))

    def add_malicious(self, node_id, pos, strategy):
        self.km.enroll(node_id, is_beacon=True)
        return self.net.add_node(
            MaliciousBeacon(node_id, pos, self.km, strategy)
        )

    def add_agent(self, node_id, pos):
        self.km.enroll(node_id)
        return self.net.add_node(NonBeaconAgent(node_id, pos, self.km))


class TestDetectionToRevocationFlow:
    def test_two_detectors_revoke_liar(self):
        world = World()
        d1 = world.add_detecting(1, Point(0, 0))
        d2 = world.add_detecting(2, Point(200, 0))
        # A 50 ft lie keeps the declared location inside both detectors'
        # radio range (100 +/- 50 <= 150), so the Section 2.2.1 range
        # check stays quiet and the inconsistency indicts the liar.
        world.add_malicious(
            3, Point(100, 0), AdversaryStrategy(p_n=0.0, location_lie_ft=50.0)
        )
        d1.probe_all_ids(3)
        d2.probe_all_ids(3)
        world.engine.run()
        # tau_alert=1: two alerts suffice.
        assert world.bs.is_revoked(3)

    def test_oversized_lie_discarded_not_indicted(self):
        """Section 2.2.1: a declared location beyond the radio range
        "cannot have arrived directly" — detecting nodes discard the
        signal as a wormhole replay instead of indicting, so an attacker
        lying by more than the communication range escapes revocation
        (at the price of every location-aware receiver discarding it)."""
        world = World()
        d1 = world.add_detecting(1, Point(0, 0))
        d2 = world.add_detecting(2, Point(200, 0))
        # 400 ft displacement: the declared location is at least 300 ft
        # from either detector — always out of range.
        world.add_malicious(
            3, Point(100, 0), AdversaryStrategy(p_n=0.0, location_lie_ft=400.0)
        )
        d1.probe_all_ids(3)
        d2.probe_all_ids(3)
        world.engine.run()
        outcomes = d1.probe_outcomes + d2.probe_outcomes
        assert outcomes
        assert all(o.decision == "replayed_wormhole" for o in outcomes)
        assert not world.bs.is_revoked(3)

    def test_benign_beacon_survives_probing(self):
        world = World()
        d1 = world.add_detecting(1, Point(0, 0))
        world.add_benign(2, Point(100, 0))
        for _ in range(5):
            d1.probe_all_ids(2)
        world.engine.run()
        assert not world.bs.revoked
        assert world.bs.suspiciousness(2) == 0


class TestWormholeFalseAlertPath:
    """The residual (1 - p_d) false-alert channel of Section 2.2.1.

    Since the range check discards any signal whose declared location is
    beyond the radio range regardless of the detector's verdict, the
    channel only survives in the *overlap* geometry: the benign target
    sits within the detecting node's direct range (declared location
    passes the range check) while a short tunnel also re-emits its reply
    nearby with a corrupted ranging measurement. Only the imperfect
    detector (rate p_d) stands between that copy and a false alert.
    """

    def _run(self, p_d):
        world = World(p_d=p_d)
        # Entrance 20 ft from the benign beacon, exit 30 ft from the
        # detector: the tunnelled reply copy measures ~30 ft against a
        # declared (true) location 100 ft away — inconsistent, yet the
        # declared location is well inside the 150 ft range.
        build_wormhole(world.net, Point(120, 0), Point(0, 30))
        d1 = world.add_detecting(1, Point(0, 0))
        world.add_benign(2, Point(100, 0))
        d1.probe_all_ids(2)
        world.engine.run()
        return world, d1

    def test_perfect_detector_no_false_alert(self):
        world, d1 = self._run(p_d=1.0)
        decisions = {o.decision for o in d1.probe_outcomes}
        # Direct copies are consistent; tunnelled copies are flagged.
        assert "replayed_wormhole" in decisions
        assert decisions <= {"consistent", "replayed_wormhole"}
        assert not world.bs.revoked

    def test_blind_detector_false_alerts(self):
        world, d1 = self._run(p_d=0.0)
        # The tunnel is never flagged; RTT is clean (latency 0), the
        # declared location is in range, but the tunnelled copy's ranging
        # is inconsistent => false alert against the benign beacon.
        assert any(o.decision == "alert" for o in d1.probe_outcomes)


class TestLocalReplayDefence:
    def test_replayed_signal_rejected_by_agent(self):
        world = World()
        world.add_benign(1, Point(0, 0))
        from repro.core.pipeline import SecureNonBeaconAgent

        world.km.enroll(50)
        agent = SecureNonBeaconAgent(
            50, Point(50, 0), world.km, world.cascade("agent")
        )
        world.net.add_node(agent)
        attacker = world.net.add_node(LocalReplayAttacker(666, Point(40, 20)))

        packet = world.km.sign(
            BeaconPacket(src_id=1, dst_id=50, claimed_location=(0.0, 0.0))
        )
        attacker.replay(packet)  # full-packet delay
        world.engine.run()
        assert agent.references == []
        assert agent.rejected_replays == 1

    def test_direct_signal_accepted_by_agent(self):
        world = World()
        beacon = world.add_benign(1, Point(0, 0))
        from repro.core.pipeline import SecureNonBeaconAgent

        world.km.enroll(50)
        agent = SecureNonBeaconAgent(
            50, Point(50, 0), world.km, world.cascade("agent")
        )
        world.net.add_node(agent)
        agent.request_beacon(1)
        world.engine.run()
        assert len(agent.references) == 1


class TestMaskingTradeoffEndToEnd:
    def test_masking_blinds_detectors_but_spares_victims(self):
        """The paper's key tension: masks that dodge detecting nodes also
        make non-beacon nodes discard the signal."""
        world = World()
        d1 = world.add_detecting(1, Point(0, 0))
        world.add_malicious(
            2, Point(100, 0), AdversaryStrategy(p_n=0.0, p_w=1.0)
        )
        from repro.core.pipeline import SecureNonBeaconAgent

        world.km.enroll(50)
        agent = SecureNonBeaconAgent(
            50, Point(120, 0), world.km, world.cascade("agent")
        )
        world.net.add_node(agent)

        d1.probe_all_ids(2)
        agent.request_beacon(2)
        world.engine.run()

        assert not world.bs.revoked  # detector fooled
        assert agent.references == []  # but victim also unaffected

    def test_unmasked_attack_detected_before_victims_pile_up(self):
        world = World()
        d1 = world.add_detecting(1, Point(0, 0))
        world.add_malicious(
            2, Point(100, 0), AdversaryStrategy(p_n=0.0)
        )
        d2 = world.add_detecting(4, Point(150, 50))
        d1.probe_all_ids(2)
        d2.probe_all_ids(2)
        world.engine.run()
        assert world.bs.is_revoked(2)


class TestKeyDistributionIntegration:
    def test_pipeline_over_blom_scheme(self):
        """The detection suite works over a real predistribution scheme."""
        from repro.crypto.predistribution import BlomScheme

        world = World()
        world.km = KeyManager(BlomScheme(8, random.Random(0)))
        world.bs = BaseStation(
            world.km, RevocationConfig(tau_report=3, tau_alert=0)
        )
        d1 = world.add_detecting(1, Point(0, 0))
        world.add_malicious(
            2, Point(100, 0), AdversaryStrategy(p_n=0.0, location_lie_ft=200.0)
        )
        d1.probe_all_ids(2)
        world.engine.run()
        assert world.bs.is_revoked(2)
