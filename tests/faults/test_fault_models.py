"""Tests for the fault-model primitives and their configuration."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ClockDriftFault,
    DelayFault,
    FaultConfig,
    FaultInjector,
    NodeCrashFault,
    PacketDuplicationFault,
    PacketLossFault,
    RttJitterFault,
    fault_config_from_dict,
)


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    def test_any_positive_field_enables(self):
        assert FaultConfig(packet_loss_rate=0.1).enabled
        assert FaultConfig(clock_drift_ppm=5.0).enabled
        assert FaultConfig(node_crash_rate=0.01).enabled

    def test_recalibrate_flag_alone_does_not_enable(self):
        assert not FaultConfig(recalibrate_under_faults=True).enabled

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(packet_loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultConfig(rtt_spike_rate=-0.1)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(rtt_jitter_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(clock_drift_ppm=-5.0)

    def test_dict_round_trip(self):
        config = FaultConfig(
            packet_loss_rate=0.2,
            rtt_jitter_cycles=100.0,
            node_crash_rate=0.05,
            crash_horizon_cycles=1e6,
            recalibrate_under_faults=True,
        )
        assert fault_config_from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_config_from_dict({"packet_loss_rat": 0.1})


class TestPacketFaults:
    def test_loss_extremes(self):
        never = PacketLossFault(0.0, random.Random(1))
        always = PacketLossFault(1.0, random.Random(1))
        assert not any(never.should_drop() for _ in range(50))
        assert all(always.should_drop() for _ in range(50))
        assert never.events == 0
        assert always.events == 50

    def test_loss_statistics(self):
        fault = PacketLossFault(0.3, random.Random(7))
        n = 5000
        drops = sum(1 for _ in range(n) if fault.should_drop())
        assert drops / n == pytest.approx(0.3, abs=0.03)

    def test_duplication_returns_delay_or_none(self):
        fault = PacketDuplicationFault(1.0, 25.0, random.Random(3))
        assert fault.duplicate_delay() == 25.0
        off = PacketDuplicationFault(0.0, 25.0, random.Random(3))
        assert off.duplicate_delay() is None

    def test_delay_fault(self):
        fault = DelayFault(1.0, 40.0, random.Random(3))
        assert fault.extra_delay() == 40.0
        off = DelayFault(0.0, 40.0, random.Random(3))
        assert off.extra_delay() == 0.0


class TestRttJitter:
    def test_jitter_bounds(self):
        fault = RttJitterFault(50.0, 0.0, 0.0, random.Random(5))
        for _ in range(200):
            perturbed = fault.perturb(1000.0)
            assert 950.0 <= perturbed <= 1050.0

    def test_never_negative(self):
        fault = RttJitterFault(500.0, 0.0, 0.0, random.Random(5))
        assert all(fault.perturb(1.0) >= 0.0 for _ in range(200))

    def test_spikes_counted(self):
        fault = RttJitterFault(0.0, 1.0, 999.0, random.Random(5))
        assert fault.perturb(100.0) == pytest.approx(1099.0)
        assert fault.counters()["fault_rtt_spikes"] == 1


class TestPerNodeFaults:
    def test_drift_is_per_node_deterministic(self):
        a = ClockDriftFault(100.0, seed=42)
        b = ClockDriftFault(100.0, seed=42)
        # Query order must not matter: per-node streams are derived.
        assert a.drift_of(5) == b.drift_of(5)
        b.drift_of(99)
        assert a.drift_of(7) == b.drift_of(7)

    def test_drift_bounds_and_skew(self):
        fault = ClockDriftFault(100.0, seed=1)
        drift = fault.drift_of(3)
        assert abs(drift) <= 100.0 / 1e6
        assert fault.skew(3, 1e6) == pytest.approx(1e6 * (1.0 + drift))

    def test_crash_extremes(self):
        everyone = NodeCrashFault(1.0, 1000.0, seed=9)
        nobody = NodeCrashFault(0.0, 1000.0, seed=9)
        for node_id in range(20):
            assert 0.0 <= everyone.crash_time(node_id) <= 1000.0
            assert everyone.is_crashed(node_id, 1000.0)
            assert not nobody.is_crashed(node_id, 1e12)

    def test_crash_time_deterministic_across_instances(self):
        a = NodeCrashFault(0.5, 1000.0, seed=4)
        b = NodeCrashFault(0.5, 1000.0, seed=4)
        assert [a.crash_time(i) for i in range(30)] == [
            b.crash_time(i) for i in range(30)
        ]


class TestFaultInjector:
    def test_from_config_builds_only_enabled_models(self):
        injector = FaultInjector.from_config(
            FaultConfig(packet_loss_rate=0.5), seed=3
        )
        assert injector.loss is not None
        assert injector.duplication is None
        assert injector.crash is None
        assert not injector.perturbs_rtt()

    def test_disabled_hooks_are_inert(self):
        injector = FaultInjector()
        assert not injector.drop_delivery()
        assert injector.duplicate_delay() is None
        assert injector.delivery_delay() == 0.0
        assert not injector.is_crashed(1, 1e9)
        assert injector.perturb_rtt(123.0, observer_id=1) == 123.0

    def test_deterministic_per_seed(self):
        config = FaultConfig(packet_loss_rate=0.5, rtt_jitter_cycles=10.0)
        a = FaultInjector.from_config(config, seed=7)
        b = FaultInjector.from_config(config, seed=7)
        assert [a.drop_delivery() for _ in range(50)] == [
            b.drop_delivery() for _ in range(50)
        ]
        assert [a.perturb_rtt(100.0) for _ in range(50)] == [
            b.perturb_rtt(100.0) for _ in range(50)
        ]

    def test_counters_merge_all_models(self):
        config = FaultConfig(packet_loss_rate=1.0, node_crash_rate=1.0,
                             crash_horizon_cycles=10.0)
        injector = FaultInjector.from_config(config, seed=1)
        injector.drop_delivery()
        injector.is_crashed(3, 100.0)
        counters = injector.counters()
        assert counters["fault_packet_loss"] == 1
        assert "fault_node_crash" in counters
