"""Invariant checkers: clean traces pass, corrupted traces are caught.

Each checker is exercised twice — over a trace the production code
actually produced (must be silent) and over a hand-built trace that
breaks the invariant (must report it). A checker that never fires is
indistinguishable from a vacuous one, so the synthetic-violation half is
what makes these tests meaningful.
"""

import random

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.core.rtt import calibrate_rtt
from repro.sim.timing import RttModel
from repro.sim.trace import TraceRecorder
from repro.verify import (
    check_alert_quota,
    check_consistent_never_indicts,
    check_honest_rtt_window,
    check_revocation_monotone,
    run_invariants,
)


def _alert(trace, t, detector, target, accepted=True, reason="accepted"):
    trace.record(t, "alert", detector=detector, target=target,
                 accepted=accepted, reason=reason)


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        n_total=150,
        n_beacons=24,
        n_malicious=3,
        field_width_ft=500.0,
        field_height_ft=500.0,
        p_prime=0.5,
        rtt_calibration_samples=500,
        seed=42,
    )
    p = SecureLocalizationPipeline(config)
    p.run()
    return p


class TestOverRealTrace:
    def test_full_pipeline_trace_is_clean(self, pipeline):
        violations = run_invariants(
            pipeline.trace,
            tau_report=pipeline.config.tau_report,
            tau_alert=pipeline.config.tau_alert,
            reporter_ids={b.node_id for b in pipeline.malicious_beacons},
        )
        assert violations == []

    def test_trace_actually_contains_the_checked_events(self, pipeline):
        # Guard against vacuous passes: the run must have produced the
        # event kinds the invariants consume.
        assert pipeline.trace.count("probe") > 0
        assert pipeline.trace.count("alert") > 0


class TestAlertQuota:
    def test_over_quota_detector_flagged(self):
        trace = TraceRecorder()
        for t, target in enumerate([7, 8, 9, 10]):
            _alert(trace, float(t), detector=1, target=target)
        violations = check_alert_quota(trace, tau_report=2)
        assert len(violations) == 1
        assert "detector 1" in violations[0].detail

    def test_rejected_alerts_do_not_count(self):
        trace = TraceRecorder()
        for t in range(10):
            _alert(trace, float(t), 1, 7, accepted=False, reason="quota-exceeded")
        assert check_alert_quota(trace, tau_report=0) == []

    def test_colluder_pool_bound(self):
        trace = TraceRecorder()
        t = 0.0
        for detector in (1, 2):  # each exactly at its individual cap
            for target in (7, 8):
                _alert(trace, t, detector, target)
                t += 1.0
        assert check_alert_quota(trace, tau_report=1, reporter_ids={1, 2}) == []
        # Shrinking the claimed pool makes the same trace violate N_a * cap.
        violations = check_alert_quota(trace, tau_report=0, reporter_ids={1, 2})
        assert any("N_a" in v.detail for v in violations)


class TestRevocationMonotone:
    def test_accepted_alert_after_revocation_flagged(self):
        trace = TraceRecorder()
        _alert(trace, 0.0, 1, 9)
        trace.record(0.0, "revoke", target=9)
        _alert(trace, 1.0, 2, 9)  # must have been rejected, but wasn't
        violations = check_revocation_monotone(trace, tau_alert=0)
        assert any("revoked beacon 9" in v.detail for v in violations)

    def test_double_revocation_flagged(self):
        trace = TraceRecorder()
        _alert(trace, 0.0, 1, 9)
        trace.record(0.0, "revoke", target=9)
        trace.record(1.0, "revoke", target=9)
        violations = check_revocation_monotone(trace, tau_alert=0)
        assert any("twice" in v.detail for v in violations)

    def test_early_revocation_flagged(self):
        trace = TraceRecorder()
        _alert(trace, 0.0, 1, 9)
        trace.record(0.0, "revoke", target=9)  # after 1 alert, tau=2 needs 3
        violations = check_revocation_monotone(trace, tau_alert=2)
        assert any("expected exactly 3" in v.detail for v in violations)

    def test_missing_revocation_flagged(self):
        trace = TraceRecorder()
        for t, detector in enumerate((1, 2, 3)):
            _alert(trace, float(t), detector, 9)
        violations = check_revocation_monotone(trace, tau_alert=2)
        assert any("never revoked" in v.detail for v in violations)

    def test_exact_protocol_sequence_is_clean(self):
        trace = TraceRecorder()
        _alert(trace, 0.0, 1, 9)
        _alert(trace, 1.0, 2, 9)
        _alert(trace, 2.0, 3, 9)
        trace.record(2.0, "revoke", target=9)
        _alert(trace, 3.0, 4, 9, accepted=False, reason="target-already-revoked")
        assert check_revocation_monotone(trace, tau_alert=2) == []


class TestConsistentNeverIndicts:
    @staticmethod
    def _probe(trace, decision, consistent):
        trace.record(
            0.0, "probe", detector=1, detecting_id=101, target=9,
            decision=decision, signal_consistent=consistent,
        )

    def test_consistent_alert_flagged(self):
        trace = TraceRecorder()
        self._probe(trace, "alert", True)
        violations = check_consistent_never_indicts(trace)
        assert len(violations) == 1
        assert "passed the signal check" in violations[0].detail

    def test_inconsistent_marked_consistent_flagged(self):
        trace = TraceRecorder()
        self._probe(trace, "consistent", False)
        assert len(check_consistent_never_indicts(trace)) == 1

    def test_agreeing_probes_clean(self):
        trace = TraceRecorder()
        self._probe(trace, "consistent", True)
        self._probe(trace, "alert", False)
        self._probe(trace, "replayed_wormhole", False)
        assert check_consistent_never_indicts(trace) == []


class TestHonestRttWindow:
    def test_zero_jitter_in_range_never_flags(self):
        model = RttModel(jitter_cycles=0.0)
        rng = random.Random(5)
        calibration = calibrate_rtt(model, rng, samples=32, distance_ft=150.0)
        honest = [
            model.sample(rng, distance_ft=d).rtt
            for d in (0.0, 37.5, 75.0, 150.0)
        ]
        assert check_honest_rtt_window(calibration, honest) == []

    def test_zero_distance_calibration_would_flag_honest_traffic(self):
        # The bug the pipeline fix addresses: a window calibrated at
        # 0 ft separation sits below the flight term of any real
        # exchange, so with zero jitter honest in-range RTTs flag.
        model = RttModel(jitter_cycles=0.0)
        rng = random.Random(5)
        calibration = calibrate_rtt(model, rng, samples=32, distance_ft=0.0)
        honest = [model.sample(rng, distance_ft=150.0).rtt]
        violations = check_honest_rtt_window(calibration, honest)
        assert len(violations) == 1
        assert "honest" in violations[0].detail

    def test_replayed_rtt_flagged(self):
        model = RttModel(jitter_cycles=0.0)
        rng = random.Random(5)
        calibration = calibrate_rtt(model, rng, samples=32, distance_ft=150.0)
        replayed = model.sample(
            rng, distance_ft=100.0, extra_delay_cycles=5_000.0
        ).rtt
        assert len(check_honest_rtt_window(calibration, [replayed])) == 1
