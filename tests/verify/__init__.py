"""Tests for the repro.verify conformance harness."""
