"""Unit tests for the naive reference oracles themselves.

The oracles are the measuring stick of the differential suite, so their
boundary behavior is pinned directly: strict inequalities at every
threshold, filter precedence, and the counter machine's exact crossing
points.
"""

import math

import pytest

from repro.verify.oracles import (
    OracleBaseStation,
    oracle_cascade,
    oracle_rtt_window,
    oracle_signal_check,
)


class TestOracleSignalCheck:
    def test_exact_threshold_is_benign(self):
        # own at origin, declared 100 ft away, measured off by exactly 10.
        assert not oracle_signal_check(0.0, 0.0, 100.0, 0.0, 110.0, 10.0)
        assert not oracle_signal_check(0.0, 0.0, 100.0, 0.0, 90.0, 10.0)

    def test_one_ulp_past_threshold_is_malicious(self):
        measured = math.nextafter(110.0, math.inf)
        assert oracle_signal_check(0.0, 0.0, 100.0, 0.0, measured, 10.0)

    def test_symmetric_in_sign_of_discrepancy(self):
        assert oracle_signal_check(0.0, 0.0, 100.0, 0.0, 130.0, 10.0)
        assert oracle_signal_check(0.0, 0.0, 100.0, 0.0, 70.0, 10.0)

    def test_uses_euclidean_distance(self):
        # 3-4-5 triangle: declared 50 ft away.
        assert not oracle_signal_check(0.0, 0.0, 30.0, 40.0, 50.0, 0.5)


class TestOracleCascade:
    BASE = dict(
        receiver_knows_location=True,
        distance_to_declared_ft=100.0,
        comm_range_ft=150.0,
        detector_flags=False,
        observed_rtt_cycles=16_000.0,
        x_max_cycles=17_000.0,
    )

    def test_accept_when_nothing_fires(self):
        assert oracle_cascade(**self.BASE) == "accept"

    def test_out_of_range_decides_alone(self):
        args = {**self.BASE, "distance_to_declared_ft": 151.0}
        assert oracle_cascade(**args) == "replayed_wormhole"

    def test_exactly_at_range_defers_to_detector(self):
        args = {**self.BASE, "distance_to_declared_ft": 150.0}
        assert oracle_cascade(**args) == "accept"
        assert (
            oracle_cascade(**{**args, "detector_flags": True})
            == "replayed_wormhole"
        )

    def test_location_unaware_ignores_range(self):
        args = {
            **self.BASE,
            "receiver_knows_location": False,
            "distance_to_declared_ft": 1_000.0,
        }
        assert oracle_cascade(**args) == "accept"

    def test_wormhole_shadows_local_replay(self):
        args = {
            **self.BASE,
            "detector_flags": True,
            "observed_rtt_cycles": 99_999.0,
        }
        assert oracle_cascade(**args) == "replayed_wormhole"

    def test_rtt_strictly_above_x_max_is_local_replay(self):
        at = {**self.BASE, "observed_rtt_cycles": 17_000.0}
        past = {**self.BASE, "observed_rtt_cycles": math.nextafter(17_000.0, math.inf)}
        assert oracle_cascade(**at) == "accept"
        assert oracle_cascade(**past) == "replayed_local"


class TestOracleRttWindow:
    def test_min_max_count(self):
        assert oracle_rtt_window([3.0, 1.0, 2.0]) == (1.0, 3.0, 3)

    def test_single_sample_degenerate_window(self):
        assert oracle_rtt_window([5.0]) == (5.0, 5.0, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            oracle_rtt_window([])


class TestOracleBaseStation:
    def test_revokes_at_threshold_crossing(self):
        bs = OracleBaseStation(tau_report=5, tau_alert=2)
        assert bs.submit(1, 9) and bs.submit(2, 9)
        assert not bs.revoked
        assert bs.submit(3, 9)
        assert bs.revoked == {9}
        assert bs.revocation_order == [9]

    def test_alerts_against_revoked_target_ignored(self):
        bs = OracleBaseStation(tau_report=5, tau_alert=0)
        assert bs.submit(1, 9)
        assert not bs.submit(2, 9)
        assert bs.alert_counters[9] == 1
        assert 2 not in bs.report_counters

    def test_quota_caps_each_detector(self):
        bs = OracleBaseStation(tau_report=1, tau_alert=99)
        assert bs.submit(1, 7) and bs.submit(1, 8)
        assert not bs.submit(1, 9)  # third alert: quota exceeded
        assert bs.report_counters[1] == 2

    def test_revoked_detector_still_reports(self):
        bs = OracleBaseStation(tau_report=5, tau_alert=0)
        assert bs.submit(2, 1)  # revokes 1 immediately
        assert 1 in bs.revoked
        assert bs.submit(1, 3)  # revoked node 1 reporting still counts
        assert 3 in bs.revoked

    def test_zero_thresholds(self):
        bs = OracleBaseStation(tau_report=0, tau_alert=0)
        assert bs.submit(1, 9)
        assert bs.revoked == {9}
        assert not bs.submit(1, 8)  # quota: second alert from 1 rejected
