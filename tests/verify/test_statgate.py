"""Statistical-gate logic, tested on synthetic observations.

The full gate (five pipeline runs) is CI's job via ``repro-verify``;
here the evaluation logic is pinned against hand-built observation and
golden dicts, plus the committed golden file's shape.
"""

import json

from repro.verify import GOLDEN_PATH, evaluate_statgate, load_golden, write_golden
from repro.verify.statgate import AFFECTED_CEILING, RATE_TOLERANCE


def _observed(
    sim12=(0.3, 0.9),
    theory12=(0.75, 0.97),
    sim13=(1.7, 0.0),
    fp=0.05,
    det=0.6,
):
    return {
        "figure12": {
            "simulation": {"0.1": sim12[0], "0.4": sim12[1]},
            "theory": {"0.1": theory12[0], "0.4": theory12[1]},
        },
        "figure13": {"simulation": {"0.1": sim13[0], "0.4": sim13[1]}},
        "figure14": {"false_positive": fp, "detection": det},
    }


class TestTrends:
    def test_healthy_observations_pass_without_golden(self):
        assert evaluate_statgate(_observed(), None) == []

    def test_flat_detection_rate_fails(self):
        violations = evaluate_statgate(_observed(sim12=(0.9, 0.9)), None)
        assert any("rise with P'" in str(v) for v in violations)

    def test_simulation_above_theory_fails(self):
        violations = evaluate_statgate(
            _observed(sim12=(0.3, 0.99), theory12=(0.75, 0.8)), None
        )
        assert any("theoretical bound" in str(v) for v in violations)

    def test_too_many_affected_fails(self):
        bad = _observed(sim13=(AFFECTED_CEILING + 1.0, 0.0))
        violations = evaluate_statgate(bad, None)
        assert any("only a few nodes" in str(v) for v in violations)

    def test_detection_below_false_positive_fails(self):
        violations = evaluate_statgate(_observed(fp=0.4, det=0.3), None)
        assert any("worse than it false-positives" in str(v) for v in violations)


class TestBands:
    def test_identical_golden_passes(self):
        observed = _observed()
        assert evaluate_statgate(observed, observed) == []

    def test_out_of_band_detection_rate_fails(self):
        golden = _observed()
        drifted = _observed(sim12=(0.3 + 2 * RATE_TOLERANCE, 0.9))
        violations = evaluate_statgate(drifted, golden)
        assert any("simulation @ P'=0.1" in str(v) for v in violations)

    def test_within_band_drift_passes(self):
        golden = _observed()
        drifted = _observed(sim12=(0.3 + RATE_TOLERANCE / 2, 0.9))
        assert evaluate_statgate(drifted, golden) == []


class TestGoldenFile:
    def test_committed_golden_exists_and_has_shape(self):
        golden = load_golden()
        assert golden is not None
        assert set(golden) == {"figure12", "figure13", "figure14"}
        assert set(golden["figure12"]["simulation"]) == {"0.1", "0.4"}
        assert 0.0 <= golden["figure14"]["detection"] <= 1.0

    def test_committed_golden_satisfies_its_own_trends(self):
        # A golden file that fails the paper's trends should never have
        # been committed (write path enforces this; assert it held).
        assert evaluate_statgate(load_golden(), None) == []

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "golden.json"
        observed = _observed()
        write_golden(observed, path)
        assert load_golden(path) == observed
        assert json.loads(path.read_text()) == observed

    def test_missing_golden_is_none(self, tmp_path):
        assert load_golden(tmp_path / "nope.json") is None

    def test_golden_path_is_packaged_next_to_module(self):
        assert GOLDEN_PATH.name == "golden_figures.json"
        assert GOLDEN_PATH.parent.name == "verify"
