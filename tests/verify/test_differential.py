"""Differential conformance: production must match the oracles.

CI runs the full 1000-scenario sweep through ``repro-verify``; here a
smaller seeded slice keeps the unit suite fast while still exercising
every component and the divergence-reporting plumbing.
"""

import pytest

from repro.verify import (
    DifferentialReport,
    differential_base_station,
    differential_cascade,
    differential_pipeline_axes,
    differential_rtt_window,
    differential_signal_check,
    differential_vectorized_core,
    run_differential_suite,
)

SCENARIOS = 150


class TestComponents:
    @pytest.mark.parametrize(
        "component",
        [
            differential_signal_check,
            differential_cascade,
            differential_rtt_window,
            differential_base_station,
        ],
    )
    def test_no_divergences(self, component):
        report = component(SCENARIOS, seed=0)
        assert report.ok, "\n".join(d.detail for d in report.divergences)
        assert report.scenarios == SCENARIOS

    @pytest.mark.parametrize(
        "component",
        [differential_signal_check, differential_base_station],
    )
    def test_seed_changes_scenarios_not_verdict(self, component):
        assert component(40, seed=1).ok
        assert component(40, seed=2).ok


@pytest.mark.slow
class TestPipelineAxes:
    def test_axes_bit_identical(self):
        report = differential_pipeline_axes(2, seed=0)
        assert report.ok, "\n".join(d.detail for d in report.divergences)


@pytest.mark.slow
class TestVectorizedCore:
    def test_scalar_vs_vectorized_bit_identical(self):
        report = differential_vectorized_core(2, seed=0)
        assert report.ok, "\n".join(d.detail for d in report.divergences)


class TestReport:
    def test_summary_counts_divergences(self):
        report = DifferentialReport("demo", 5)
        assert report.ok
        assert "OK" in report.summary()

    def test_full_suite_shape(self):
        reports = run_differential_suite(
            10, seed=0, axes_scenarios=0, vec_scenarios=0
        )
        assert [r.component for r in reports] == [
            "signal_check",
            "cascade",
            "rtt_window",
            "base_station",
            "pipeline_axes",
            "vectorized_core",
        ]
        assert all(r.ok for r in reports)
