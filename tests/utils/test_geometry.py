"""Tests for repro.utils.geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.geometry import (
    Point,
    clamp,
    distance,
    distance_sq,
    midpoint,
    random_point_in_rect,
)
from repro.utils.geometry import centroid

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_345(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_point_is_tuple(self):
        x, y = Point(7.0, 8.0)
        assert (x, y) == (7.0, 8.0)

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points)
    def test_distance_sq_consistent(self, a, b):
        assert distance_sq(a, b) == pytest.approx(distance(a, b) ** 2, rel=1e-6)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestMidpointCentroid:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(10, 4)) == Point(5, 2)

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert distance(m, a) == pytest.approx(distance(m, b), abs=1e-6)

    def test_centroid_of_square(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_single_point(self):
        assert centroid([Point(5, 6)]) == Point(5, 6)


class TestRandomPoint:
    def test_within_bounds(self, rng):
        for _ in range(100):
            p = random_point_in_rect(rng, 50.0, 20.0)
            assert 0.0 <= p.x <= 50.0
            assert 0.0 <= p.y <= 20.0

    def test_deterministic_given_seed(self):
        import random

        a = random_point_in_rect(random.Random(5), 10, 10)
        b = random_point_in_rect(random.Random(5), 10, 10)
        assert a == b


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)

    @given(
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(min_value=-100, max_value=0),
        st.floats(min_value=0, max_value=100),
    )
    def test_result_in_interval(self, v, lo, hi):
        assert lo <= clamp(v, lo, hi) <= hi
