"""Tests for the phase-timer / counter profiling utilities."""

import time

from repro.utils.profiling import NetworkCounters, PhaseProfile, merge_profiles


class TestPhaseProfile:
    def test_phase_records_elapsed_time(self):
        profile = PhaseProfile()
        with profile.phase("work"):
            time.sleep(0.01)
        assert profile.phase_seconds["work"] >= 0.01

    def test_phase_reentry_accumulates(self):
        profile = PhaseProfile()
        for _ in range(3):
            with profile.phase("loop"):
                pass
        assert len(profile.phase_seconds) == 1
        assert profile.phase_seconds["loop"] >= 0.0

    def test_phase_records_even_on_exception(self):
        profile = PhaseProfile()
        try:
            with profile.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "boom" in profile.phase_seconds

    def test_counters(self):
        profile = PhaseProfile()
        profile.count("probes")
        profile.count("probes", 4)
        assert profile.counters == {"probes": 5}

    def test_total_seconds(self):
        profile = PhaseProfile()
        profile.phase_seconds = {"a": 1.0, "b": 2.5}
        assert profile.total_seconds == 3.5

    def test_to_dict_shape(self):
        profile = PhaseProfile()
        with profile.phase("p"):
            pass
        profile.count("c", 2)
        snapshot = profile.to_dict()
        assert set(snapshot) == {"phases", "counters"}
        assert snapshot["counters"] == {"c": 2}
        # Snapshot is a copy, not a live view.
        snapshot["counters"]["c"] = 99
        assert profile.counters["c"] == 2


class TestMergeProfiles:
    def test_empty(self):
        assert merge_profiles([]) == {"trials": 0, "phases": {}, "counters": {}}

    def test_sums_phases_and_counters(self):
        merged = merge_profiles(
            [
                {"phases": {"a": 1.0, "b": 2.0}, "counters": {"x": 3}},
                {"phases": {"a": 0.5}, "counters": {"x": 1, "y": 7}},
            ]
        )
        assert merged["trials"] == 2
        assert merged["phases"] == {"a": 1.5, "b": 2.0}
        assert merged["counters"] == {"x": 4, "y": 7}

    def test_tolerates_missing_sections(self):
        merged = merge_profiles([{}, {"phases": {"a": 1.0}}])
        assert merged["trials"] == 2
        assert merged["phases"] == {"a": 1.0}


class TestNetworkCounters:
    def test_to_dict_roundtrip(self):
        counters = NetworkCounters(distance_evals=5, deliveries=2)
        assert counters.to_dict() == {
            "distance_evals": 5,
            "grid_cells_visited": 0,
            "spatial_queries": 0,
            "deliveries": 2,
        }
