"""Tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_int_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_invalid(self, value):
        with pytest.raises(ConfigurationError, match="p must be"):
            check_probability(value, "p")

    def test_fraction_alias(self):
        assert check_fraction(0.25, "f") == 0.25


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.5, "x")


class TestCheckIntInRange:
    def test_accepts(self):
        assert check_int_in_range(3, "n", 0, 5) == 3

    def test_rejects_below(self):
        with pytest.raises(ConfigurationError):
            check_int_in_range(-1, "n", 0)

    def test_rejects_above(self):
        with pytest.raises(ConfigurationError):
            check_int_in_range(6, "n", 0, 5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_int_in_range(True, "n", 0, 5)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_int_in_range(1.0, "n", 0)

    def test_no_upper_bound(self):
        assert check_int_in_range(10**9, "n", 0) == 10**9
