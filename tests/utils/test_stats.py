"""Tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    Ecdf,
    binomial_cdf,
    binomial_pmf,
    binomial_sf,
    mean,
    variance,
)


class TestEcdf:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_bounds(self):
        e = Ecdf([3, 1, 2])
        assert e.x_min == 1
        assert e.x_max == 3
        assert e.support_width() == 2

    def test_cdf_values(self):
        e = Ecdf([1, 2, 3, 4])
        assert e(0.5) == 0.0
        assert e(1) == 0.25
        assert e(2.5) == 0.5
        assert e(4) == 1.0
        assert e(100) == 1.0

    def test_quantile_inverse(self):
        e = Ecdf(range(1, 101))
        assert e.quantile(0.0) == 1
        assert e.quantile(1.0) == 100
        assert e.quantile(0.5) == 50

    def test_quantile_out_of_range(self):
        e = Ecdf([1, 2])
        with pytest.raises(ValueError):
            e.quantile(1.5)

    def test_duplicates_collapse_in_curve(self):
        e = Ecdf([1, 1, 2])
        curve = e.curve()
        assert curve == [(1, pytest.approx(2 / 3)), (2, pytest.approx(1.0))]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_cdf_monotone(self, xs):
        e = Ecdf(xs)
        values = [e(x) for x in sorted(xs)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_cdf_hits_one_at_max(self, xs):
        e = Ecdf(xs)
        assert e(e.x_max) == 1.0


class TestBinomial:
    def test_pmf_sums_to_one(self):
        total = sum(binomial_pmf(k, 10, 0.3) for k in range(11))
        assert total == pytest.approx(1.0)

    def test_pmf_out_of_support(self):
        assert binomial_pmf(-1, 5, 0.5) == 0.0
        assert binomial_pmf(6, 5, 0.5) == 0.0

    def test_pmf_degenerate_p0(self):
        assert binomial_pmf(0, 5, 0.0) == 1.0
        assert binomial_pmf(1, 5, 0.0) == 0.0

    def test_pmf_degenerate_p1(self):
        assert binomial_pmf(5, 5, 1.0) == 1.0

    def test_pmf_matches_known_value(self):
        # C(4,2) * 0.5^4 = 6/16
        assert binomial_pmf(2, 4, 0.5) == pytest.approx(6 / 16)

    def test_pmf_rejects_bad_p(self):
        with pytest.raises(ValueError):
            binomial_pmf(1, 2, 1.5)

    def test_pmf_rejects_negative_n(self):
        with pytest.raises(ValueError):
            binomial_pmf(0, -1, 0.5)

    def test_cdf_plus_sf_is_one(self):
        for k in range(-1, 12):
            assert binomial_cdf(k, 10, 0.4) + binomial_sf(k, 10, 0.4) == (
                pytest.approx(1.0)
            )

    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=0, max_value=1),
    )
    def test_sf_monotone_decreasing_in_k(self, k, n, p):
        assert binomial_sf(k, n, p) >= binomial_sf(k + 1, n, p) - 1e-12


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_constant_is_zero(self):
        assert variance([4.0, 4.0, 4.0]) == 0.0

    def test_variance_known(self):
        assert variance([1.0, 3.0]) == 1.0
