"""Tests for detecting-ID inference and its countermeasure."""

import pytest

from repro.attacks.inference import InferringMaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.localization.beacon import NonBeaconAgent
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


class World:
    def __init__(self, seed=3, noise_free=True):
        self.engine = Engine()
        self.rngs = RngRegistry(seed)
        self.net = Network(self.engine, rngs=self.rngs)
        if noise_free:
            self.net.ranging_error = lambda d, rng: 0.0
        self.km = KeyManager()
        self.bs = BaseStation(
            self.km, RevocationConfig(tau_report=5, tau_alert=0)
        )
        self.cal = calibrate_rtt(
            self.net.rtt_model, self.rngs.stream("cal"), samples=1000
        )

    def add_detecting(self, node_id, pos, m=4, randomization=0.0):
        self.km.enroll(node_id, is_beacon=True)
        cascade = ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                1.0, self.rngs.stream(f"wd{node_id}")
            ),
            local_replay_detector=LocalReplayDetector(self.cal),
            comm_range_ft=self.net.radio.comm_range_ft,
        )
        beacon = DetectingBeacon(
            node_id,
            pos,
            self.km,
            signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
            filter_cascade=cascade,
            base_station=self.bs,
            detecting_ids=self.km.allocate_detecting_ids(node_id, m),
            probe_power_randomization_ft=randomization,
        )
        self.net.add_node(beacon)
        for did in beacon.detecting_ids:
            self.net.add_alias(did, node_id)
        return beacon

    def add_inferring(
        self, node_id, pos, beacon_positions, tolerance=20.0, lie_ft=150.0
    ):
        self.km.enroll(node_id, is_beacon=True)
        mal = InferringMaliciousBeacon(
            node_id,
            pos,
            self.km,
            AdversaryStrategy(p_n=0.0, location_lie_ft=lie_ft),
            known_beacon_positions=beacon_positions,
            ring_tolerance_ft=tolerance,
        )
        self.net.add_node(mal)
        return mal

    def add_sensor(self, node_id, pos):
        self.km.enroll(node_id)
        return self.net.add_node(NonBeaconAgent(node_id, pos, self.km))


class TestInference:
    def test_probe_from_known_beacon_ring_suspected(self):
        world = World()
        detector = world.add_detecting(1, Point(0, 0))
        mal = world.add_inferring(
            2, Point(100, 0), beacon_positions={1: Point(0, 0)}
        )
        detector.probe_all_ids(2)
        world.engine.run()
        # Probe distance = 100 = ring distance to beacon 1 -> suspected.
        assert mal.inference.suspected_detector == 4
        # The detector saw only honest answers: no alert raised.
        assert all(o.decision == "consistent" for o in detector.probe_outcomes)
        assert not world.bs.revoked

    def test_genuine_sensor_not_suspected(self):
        world = World()
        mal = world.add_inferring(
            2, Point(100, 0), beacon_positions={1: Point(0, 0)}
        )
        sensor = world.add_sensor(50, Point(160, 20))
        sensor.request_beacon(2)
        world.engine.run()
        assert mal.inference.treated_as_sensor == 1
        # The sensor got the attack (lie), not honesty.
        ref = sensor.references[0]
        assert ref.beacon_location.distance_to(mal.position) > 100.0

    def test_power_randomization_defeats_inference(self):
        world = World()
        detector = world.add_detecting(
            1, Point(0, 0), randomization=60.0
        )
        # A 50 ft lie keeps the declared location inside the detector's
        # radio range, so the Section 2.2.1 range check does not mask
        # the inconsistency as a wormhole replay.
        mal = world.add_inferring(
            2, Point(100, 0), beacon_positions={1: Point(0, 0)}, lie_ft=50.0
        )
        detector.probe_all_ids(2)
        world.engine.run()
        # With ±60 ft of probe-power noise most probes fall off the ring,
        # so the malicious beacon attacks them — and gets caught.
        assert mal.inference.treated_as_sensor >= 1
        assert any(o.decision == "alert" for o in detector.probe_outcomes)
        assert world.bs.is_revoked(2)

    def test_sticky_suspicion(self):
        world = World()
        detector = world.add_detecting(1, Point(0, 0), m=1)
        mal = world.add_inferring(
            2, Point(100, 0), beacon_positions={1: Point(0, 0)}
        )
        did = detector.detecting_ids[0]
        detector.probe(2, did)
        detector.probe(2, did)
        world.engine.run()
        # Once suspected, always answered honestly.
        assert mal.inference.suspected_detector >= 1
        assert not world.bs.revoked

    def test_tolerance_zero_suspects_nothing_with_noise(self):
        world = World(noise_free=False)
        detector = world.add_detecting(1, Point(0, 0))
        mal = world.add_inferring(
            2, Point(100, 0), beacon_positions={1: Point(0, 0)}, tolerance=0.0
        )
        detector.probe_all_ids(2)
        world.engine.run()
        # Ranging noise alone pushes measured distances off the exact
        # ring, so a zero-tolerance attacker suspects (almost) no one.
        assert mal.inference.suspected_detector <= 1
