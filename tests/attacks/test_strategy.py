"""Tests for the adversary mixed strategy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.errors import ConfigurationError


class TestEffectiveProbability:
    def test_all_zero_is_fully_malicious(self):
        s = AdversaryStrategy()
        assert s.p_effective == 1.0

    def test_formula(self):
        s = AdversaryStrategy(p_n=0.5, p_w=0.5, p_l=0.5)
        assert s.p_effective == pytest.approx(0.125)

    def test_with_effective_inverts(self):
        for target in (0.05, 0.2, 0.5, 0.9):
            s = AdversaryStrategy.with_effective(target)
            assert s.p_effective == pytest.approx(target, rel=1e-9)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryStrategy(p_n=1.5)
        with pytest.raises(ConfigurationError):
            AdversaryStrategy.with_effective(-0.1)

    @given(st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_p_effective_in_unit_interval(self, pn, pw, pl):
        s = AdversaryStrategy(p_n=pn, p_w=pw, p_l=pl)
        assert 0.0 <= s.p_effective <= 1.0


class TestStickyDecisions:
    def test_same_requester_same_decision(self):
        s = AdversaryStrategy(p_n=0.3, p_w=0.3, p_l=0.3, seed=5)
        decisions = [s.decide(42) for _ in range(10)]
        assert len(set(decisions)) == 1

    def test_deterministic_across_instances(self):
        a = AdversaryStrategy(p_n=0.3, p_w=0.3, p_l=0.3, seed=5)
        b = AdversaryStrategy(p_n=0.3, p_w=0.3, p_l=0.3, seed=5)
        assert [a.decide(i) for i in range(50)] == [b.decide(i) for i in range(50)]

    def test_seed_changes_decisions(self):
        a = AdversaryStrategy(p_n=0.5, seed=1)
        b = AdversaryStrategy(p_n=0.5, seed=2)
        assert [a.decide(i) for i in range(100)] != [
            b.decide(i) for i in range(100)
        ]

    def test_pure_normal(self):
        s = AdversaryStrategy(p_n=1.0)
        assert all(s.decide(i) is ResponseKind.NORMAL for i in range(20))

    def test_pure_malicious(self):
        s = AdversaryStrategy(p_n=0.0, p_w=0.0, p_l=0.0)
        assert all(s.decide(i) is ResponseKind.MALICIOUS for i in range(20))

    def test_pure_wormhole_mask(self):
        s = AdversaryStrategy(p_n=0.0, p_w=1.0, p_l=0.0)
        assert all(s.decide(i) is ResponseKind.MASK_WORMHOLE for i in range(20))

    def test_pure_local_mask(self):
        s = AdversaryStrategy(p_n=0.0, p_w=0.0, p_l=1.0)
        assert all(
            s.decide(i) is ResponseKind.MASK_LOCAL_REPLAY for i in range(20)
        )

    def test_empirical_frequencies_match(self):
        s = AdversaryStrategy.with_effective(0.3, seed=9)
        n = 4000
        malicious = sum(
            1 for i in range(n) if s.decide(i) is ResponseKind.MALICIOUS
        )
        assert malicious / n == pytest.approx(0.3, abs=0.03)

    def test_decisions_made_snapshot(self):
        s = AdversaryStrategy(seed=0)
        s.decide(1)
        s.decide(2)
        snapshot = s.decisions_made()
        assert set(snapshot) == {1, 2}
        snapshot[3] = ResponseKind.NORMAL  # mutating the copy is harmless
        assert 3 not in s.decisions_made()
