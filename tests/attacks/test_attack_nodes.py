"""Tests for malicious beacons, masquerade, replay, and collusion."""

import pytest

from repro.attacks.collusion import ColludingReporters
from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.masquerade import MasqueradeAttacker
from repro.attacks.replay import LocalReplayAttacker, build_wormhole
from repro.attacks.strategy import AdversaryStrategy, ResponseKind
from repro.crypto.manager import KeyManager
from repro.errors import ConfigurationError
from repro.localization.beacon import BeaconService, NonBeaconAgent
from repro.sim.engine import Engine
from repro.sim.messages import BeaconPacket
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.timing import packet_transmission_cycles
from repro.utils.geometry import Point


@pytest.fixture
def world():
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(21))
    km = KeyManager()
    return engine, net, km


class TestMaliciousBeacon:
    def _mal(self, net, km, strategy, pos=Point(0, 0), node_id=1):
        km.enroll(node_id, is_beacon=True)
        return net.add_node(MaliciousBeacon(node_id, pos, km, strategy))

    def _agent(self, net, km, pos=Point(50, 0), node_id=50):
        km.enroll(node_id)
        return net.add_node(NonBeaconAgent(node_id, pos, km))

    def test_normal_decision_is_honest(self, world):
        engine, net, km = world
        mal = self._mal(net, km, AdversaryStrategy(p_n=1.0))
        agent = self._agent(net, km)
        agent.request_beacon(1)
        engine.run()
        ref = agent.references[0]
        assert ref.beacon_location == mal.position
        assert abs(ref.residual_at(agent.position)) <= 10.0

    def test_malicious_decision_lies(self, world):
        engine, net, km = world
        mal = self._mal(
            net, km, AdversaryStrategy(p_n=0.0, location_lie_ft=120.0)
        )
        agent = self._agent(net, km)
        agent.request_beacon(1)
        engine.run()
        ref = agent.references[0]
        assert ref.beacon_location.distance_to(mal.position) == pytest.approx(120.0)
        # The lie makes measured and calculated distances inconsistent.
        assert abs(ref.residual_at(agent.position)) > 10.0

    def test_lie_is_sticky_per_requester(self, world):
        engine, net, km = world
        mal = self._mal(net, km, AdversaryStrategy(p_n=0.0))
        agent = self._agent(net, km)
        agent.request_beacon(1)
        agent.request_beacon(1)
        engine.run()
        assert (
            agent.references[0].beacon_location
            == agent.references[1].beacon_location
        )

    def test_wormhole_mask_declares_far_location(self, world):
        engine, net, km = world
        self._mal(net, km, AdversaryStrategy(p_n=0.0, p_w=1.0))
        agent = self._agent(net, km)
        agent.request_beacon(1)
        engine.run()
        ref = agent.references[0]
        assert ref.beacon_location.distance_to(agent.position) > 150.0

    def test_wormhole_mask_sets_fake_symptoms(self, world):
        engine, net, km = world
        self._mal(net, km, AdversaryStrategy(p_n=0.0, p_w=1.0))
        km.enroll(50)
        receptions = []
        agent = NonBeaconAgent(50, Point(50, 0), km)
        agent.on(BeaconPacket, lambda n, r: receptions.append(r))
        net.add_node(agent)
        agent.request_beacon(1)
        engine.run()
        assert receptions[0].transmission.fake_wormhole_symptoms is True

    def test_local_replay_mask_adds_packet_delay(self, world):
        engine, net, km = world
        self._mal(net, km, AdversaryStrategy(p_n=0.0, p_w=0.0, p_l=1.0))
        km.enroll(50)
        receptions = []
        agent = NonBeaconAgent(50, Point(50, 0), km)
        agent.on(BeaconPacket, lambda n, r: receptions.append(r))
        net.add_node(agent)
        agent.request_beacon(1)
        engine.run()
        tx = receptions[0].transmission
        assert tx.extra_delay_cycles >= packet_transmission_cycles(288)

    def test_response_kind_counters(self, world):
        engine, net, km = world
        mal = self._mal(net, km, AdversaryStrategy(p_n=1.0))
        agent = self._agent(net, km)
        agent.request_beacon(1)
        engine.run()
        assert mal.responses_by_kind[ResponseKind.NORMAL] == 1

    def test_packets_still_authenticate(self, world):
        # A compromised beacon holds real keys: tampering is NOT what gives
        # it away (the content lie is), so its packets must verify.
        engine, net, km = world
        self._mal(net, km, AdversaryStrategy(p_n=0.0))
        agent = self._agent(net, km)
        agent.request_beacon(1)
        engine.run()
        assert len(agent.references) == 1  # reference collected => verified


class TestMasquerade:
    def test_forged_packets_rejected(self, world):
        engine, net, km = world
        km.enroll(1, is_beacon=True)
        net.add_node(BeaconService(1, Point(300, 300), km))
        km.enroll(50)
        agent = net.add_node(NonBeaconAgent(50, Point(50, 0), km))
        attacker = net.add_node(
            MasqueradeAttacker(
                666,
                Point(40, 0),
                impersonated_id=1,
                fake_location=Point(0, 0),
            )
        )
        attacker.forge_beacon_to(50)
        engine.run()
        assert attacker.forged_sent == 1
        assert agent.references == []  # auth filter dropped the forgery

    def test_answers_overheard_requests(self, world):
        engine, net, km = world
        km.enroll(50)
        agent = net.add_node(NonBeaconAgent(50, Point(50, 0), km))
        attacker = net.add_node(
            MasqueradeAttacker(
                666,
                Point(60, 0),
                impersonated_id=777,
                fake_location=Point(0, 0),
            )
        )
        # The agent requests the attacker's own radio id; the attacker
        # responds with a forgery claiming to be beacon 777.
        km.enroll(666)
        agent.request_beacon(666)
        engine.run()
        assert attacker.forged_sent == 1
        assert agent.references == []


class TestLocalReplay:
    def test_capture_and_replay(self, world):
        engine, net, km = world
        km.enroll(1, is_beacon=True)
        beacon = net.add_node(BeaconService(1, Point(0, 0), km))
        km.enroll(50)
        agent = net.add_node(NonBeaconAgent(50, Point(50, 0), km))
        attacker = net.add_node(LocalReplayAttacker(666, Point(30, 10)))

        # Legitimate exchange happens; attacker overhears nothing by
        # default (unicast), so hand it the packet as a captured signal.
        packet = km.sign(
            BeaconPacket(src_id=1, dst_id=50, claimed_location=(0.0, 0.0))
        )
        attacker.captured.append(packet)
        attacker.replay_all()
        engine.run()
        assert attacker.replays_sent == 1
        # The replayed packet authenticates (it is verbatim) and lands.
        assert len(agent.references) == 1
        assert agent.references[0].beacon_id == 1

    def test_replay_carries_minimum_delay(self, world):
        engine, net, km = world
        km.enroll(1, is_beacon=True)
        km.enroll(50)
        receptions = []
        agent = NonBeaconAgent(50, Point(50, 0), km)
        agent.on(BeaconPacket, lambda n, r: receptions.append(r))
        net.add_node(agent)
        attacker = net.add_node(LocalReplayAttacker(666, Point(30, 10)))
        packet = km.sign(
            BeaconPacket(src_id=1, dst_id=50, claimed_location=(0.0, 0.0))
        )
        attacker.replay(packet)
        engine.run()
        tx = receptions[0].transmission
        assert tx.replayed_by == 666
        assert tx.extra_delay_cycles >= packet_transmission_cycles(
            packet.size_bits
        )

    def test_replay_measured_from_attacker_position(self, world):
        engine, net, km = world
        net.ranging_error = lambda d, rng: 0.0
        km.enroll(1, is_beacon=True)
        km.enroll(50)
        receptions = []
        agent = NonBeaconAgent(50, Point(50, 0), km)
        agent.on(BeaconPacket, lambda n, r: receptions.append(r))
        net.add_node(agent)
        attacker = net.add_node(LocalReplayAttacker(666, Point(150, 0)))
        packet = km.sign(
            BeaconPacket(src_id=1, dst_id=50, claimed_location=(0.0, 0.0))
        )
        attacker.replay(packet)
        engine.run()
        # Signal physically travels attacker -> agent: 100 ft, not 50.
        assert receptions[0].measured_distance_ft == pytest.approx(100.0)

    def test_detached_attacker_raises(self):
        attacker = LocalReplayAttacker(666, Point(0, 0))
        with pytest.raises(Exception):
            attacker.replay(BeaconPacket(src_id=1, dst_id=2))


class TestBuildWormhole:
    def test_installs_link(self, world):
        engine, net, km = world
        link = build_wormhole(net, Point(0, 0), Point(900, 900))
        assert link in net.wormholes


class TestColludingReporters:
    def test_budget(self):
        c = ColludingReporters(reporter_ids=[1, 2, 3], tau_report=2, tau_alert=2)
        assert c.total_alert_budget == 9
        assert c.expected_benign_revocations() == 3

    def test_concentrated_schedule_revokes_in_blocks(self):
        c = ColludingReporters(reporter_ids=[1, 2], tau_report=2, tau_alert=2)
        schedule = c.concentrated_schedule([101, 102, 103])
        # Budget 6 alerts; 3 per target -> exactly 2 targets covered.
        targets = [t for _, t in schedule]
        assert targets == [101, 101, 101, 102, 102, 102]

    def test_concentrated_schedule_rotates_reporters(self):
        c = ColludingReporters(
            reporter_ids=[1, 2, 3], tau_report=2, tau_alert=2
        )
        schedule = c.concentrated_schedule([101, 102, 103])
        # Each target's three alerts come from three distinct colluders,
        # so per-pair deduplication cannot defuse the attack.
        for target in (101, 102, 103):
            reporters = {r for r, t in schedule if t == target}
            assert len(reporters) == 3

    def test_concentrated_schedule_respects_quota(self):
        c = ColludingReporters(
            reporter_ids=[1, 2, 3], tau_report=2, tau_alert=2
        )
        schedule = c.concentrated_schedule(list(range(100, 120)))
        assert len(schedule) == c.total_alert_budget
        from collections import Counter

        per_reporter = Counter(r for r, _ in schedule)
        assert all(n <= 3 for n in per_reporter.values())

    def test_spread_schedule_covers_targets_evenly(self):
        c = ColludingReporters(reporter_ids=[1], tau_report=3, tau_alert=2)
        schedule = c.spread_schedule([101, 102])
        targets = [t for _, t in schedule]
        assert targets == [101, 102, 101, 102]

    def test_empty_targets(self):
        c = ColludingReporters(reporter_ids=[1], tau_report=3, tau_alert=2)
        assert c.concentrated_schedule([]) == []
        assert c.spread_schedule([]) == []

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            ColludingReporters(reporter_ids=[1], tau_report=-1, tau_alert=0)
