"""Bench-regression tracker: trend rows, the --check gate, stale-cpu.

Runs ``tools/bench_report.py`` against synthetic BENCH files in a tmp
repo root so the verdict logic (direction-aware regressions, the 15%
threshold, last-history-line-wins baselines, stale-cpu annotation) is
pinned independent of the real committed numbers.
"""

import copy
import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_report", REPO_ROOT / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_report = _load()

#: One complete, healthy set of BENCH files (every headline present).
BASELINE_BENCHES = {
    "BENCH_pipeline": {
        "full_trial": {"fast_s": 0.2, "naive_s": 2.0, "speedup": 10.0},
        "reachability": {"fast_s": 0.02},
        "metrics_collection": {"fast_s": 0.005},
    },
    "BENCH_obs": {
        "full_trial_observe_off": {"seconds": 2.0},
        "full_trial_observe_on": {"seconds": 2.2},
    },
    "BENCH_revocation": {
        "in_process_base_station": {"alerts_per_sec": 50000.0},
        "service": {
            "memory": {"alerts_per_sec": 20000.0},
            "jsonl": {"alerts_per_sec": 15000.0},
        },
        "recovery": {"records_per_sec": 80000.0},
    },
    "BENCH_scaling": {
        "queue_scaling": {
            "workers": {
                str(w): {"throughput_trials_per_s": float(w)}
                for w in (1, 2, 4, 8)
            }
        }
    },
    "BENCH_faults": {
        "detection_vs_loss": {"0.0": {"detection_rate": 0.9}},
        "detection_vs_rtt_jitter": {"0.0": {"detection_rate": 0.85}},
    },
    "BENCH_arena": {
        "arena": {
            name: {"detection_rate": 0.5, "false_positive_rate": 0.1}
            for name in ("paper", "consistency", "mahalanobis", "noisy")
        }
    },
}


def _write_benches(root, benches, cpu_count=16):
    for name, benchmarks in benches.items():
        (root / f"{name}.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "environment": {"cpu_count": cpu_count, "python": "3"},
                    "benchmarks": benchmarks,
                }
            )
        )


@pytest.fixture
def repo(tmp_path):
    """A tmp repo root with healthy BENCH files and a recorded history."""
    _write_benches(tmp_path, BASELINE_BENCHES)
    assert (
        bench_report.main(
            ["--repo-root", str(tmp_path), "--record", "--recorded", "t0"]
        )
        == 0
    )
    return tmp_path


class TestDig:
    def test_plain_nested_path(self):
        assert bench_report.dig({"a": {"b": 1.5}}, "a.b") == 1.5

    def test_float_looking_keys_resolve_literally(self):
        data = {"detection_vs_loss": {"0.0": {"detection_rate": 0.9}}}
        assert (
            bench_report.dig(data, "detection_vs_loss.0.0.detection_rate")
            == 0.9
        )

    def test_missing_or_non_numeric_is_none(self):
        assert bench_report.dig({"a": {"b": 1}}, "a.c") is None
        assert bench_report.dig({"a": "text"}, "a") is None
        assert bench_report.dig({"a": {"b": 1}}, "a.b.c") is None


class TestCheckGate:
    def test_unchanged_benches_pass(self, repo, capsys):
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0
        assert "bench check OK" in capsys.readouterr().out

    def test_lower_metric_regressing_upward_fails(self, repo, capsys):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_pipeline"]["full_trial"]["fast_s"] = 0.3  # +50%
        _write_benches(repo, benches)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 1
        captured = capsys.readouterr()
        assert "bench check FAILED" in captured.out
        assert "REGRESSION BENCH_pipeline full_trial.fast_s" in captured.err

    def test_higher_metric_regressing_downward_fails(self, repo):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_faults"]["detection_vs_loss"]["0.0"][
            "detection_rate"
        ] = 0.5
        _write_benches(repo, benches)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 1

    def test_within_threshold_noise_passes(self, repo):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_pipeline"]["full_trial"]["fast_s"] = 0.22  # +10%
        _write_benches(repo, benches)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0

    def test_improvement_never_fails(self, repo):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_pipeline"]["full_trial"]["fast_s"] = 0.05  # 4x faster
        _write_benches(repo, benches)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0

    def test_missing_bench_file_is_a_problem(self, repo):
        (repo / "BENCH_faults.json").unlink()
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 1


class TestStaleCpu:
    def test_scaling_regression_on_small_cpu_is_annotated_not_failed(
        self, repo, capsys
    ):
        benches = copy.deepcopy(BASELINE_BENCHES)
        workers = benches["BENCH_scaling"]["queue_scaling"]["workers"]
        workers["8"]["throughput_trials_per_s"] = 2.0  # -75% vs baseline 8
        _write_benches(repo, benches, cpu_count=2)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0
        captured = capsys.readouterr()
        assert "stale-cpu" in captured.err
        assert "note (not failing)" in captured.err
        assert "1 stale-cpu note(s)" in captured.out

    def test_non_scaling_regressions_still_fail_on_small_cpu(self, repo):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_obs"]["full_trial_observe_off"]["seconds"] = 9.0
        _write_benches(repo, benches, cpu_count=1)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 1

    def test_scaling_improvement_on_small_cpu_is_never_improved(self, repo):
        # The inverse direction of the annotation: a stale current value
        # must not *pass* as an improvement either — both directions of a
        # meaningless comparison are "stale".
        benches = copy.deepcopy(BASELINE_BENCHES)
        workers = benches["BENCH_scaling"]["queue_scaling"]["workers"]
        workers["8"]["throughput_trials_per_s"] = 99.0  # "12x" on 2 CPUs
        _write_benches(repo, benches, cpu_count=2)
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0
        rows = bench_report.build_rows(
            bench_report.load_current(repo, []),
            bench_report.load_history(repo / "benchmarks" / "history.jsonl", []),
            0.15,
        )
        by_metric = {row["metric"]: row for row in rows}
        eight = by_metric["queue_scaling.workers.8.throughput_trials_per_s"]
        assert eight["status"] == "stale"
        # The unchanged stale row stays plain "ok" (annotated, no verdict).
        four = by_metric["queue_scaling.workers.4.throughput_trials_per_s"]
        assert four["status"] == "ok"
        assert any("stale-cpu" in note for note in four["notes"])

    def test_stale_baseline_is_treated_as_no_baseline(self, repo, capsys):
        # Record a baseline from a 2-CPU machine: its 4- and 8-worker
        # numbers are meaningless, so later healthy runs must compare
        # against *nothing* — neither failing (regressed direction) nor
        # passing-as-improved (improved direction) against them.
        stale = copy.deepcopy(BASELINE_BENCHES)
        workers = stale["BENCH_scaling"]["queue_scaling"]["workers"]
        workers["4"]["throughput_trials_per_s"] = 0.1
        workers["8"]["throughput_trials_per_s"] = 99.0
        _write_benches(repo, stale, cpu_count=2)
        assert (
            bench_report.main(
                ["--repo-root", str(repo), "--record", "--recorded", "t1"]
            )
            == 0
        )
        # Healthy 16-CPU current run: +3900% vs workers.4, -92% vs
        # workers.8 — both comparisons would trip the gate if trusted.
        _write_benches(repo, BASELINE_BENCHES, cpu_count=16)
        capsys.readouterr()
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0
        assert "bench check OK" in capsys.readouterr().out
        rows = bench_report.build_rows(
            bench_report.load_current(repo, []),
            bench_report.load_history(repo / "benchmarks" / "history.jsonl", []),
            0.15,
        )
        by_metric = {row["metric"]: row for row in rows}
        for w in (4, 8):
            row = by_metric[
                f"queue_scaling.workers.{w}.throughput_trials_per_s"
            ]
            assert row["status"] == "no-baseline"
            assert row["baseline"] is None
            assert any("stale-cpu baseline" in note for note in row["notes"])
        # The 1- and 2-worker entries are valid on 2 CPUs: still compared.
        assert (
            by_metric[
                "queue_scaling.workers.1.throughput_trials_per_s"
            ]["status"]
            == "ok"
        )


class TestHistory:
    def test_last_history_line_wins(self, repo):
        benches = copy.deepcopy(BASELINE_BENCHES)
        benches["BENCH_pipeline"]["full_trial"]["fast_s"] = 0.4
        _write_benches(repo, benches)
        # Record the slower state as the newest baseline: the once-slow
        # current values are now exactly on baseline again.
        assert (
            bench_report.main(
                ["--repo-root", str(repo), "--record", "--recorded", "t1"]
            )
            == 0
        )
        assert bench_report.main(["--repo-root", str(repo), "--check"]) == 0
        history = (repo / "benchmarks" / "history.jsonl").read_text()
        assert len(history.splitlines()) == 2 * len(BASELINE_BENCHES)

    def test_no_history_means_no_baseline_not_failure(self, tmp_path):
        _write_benches(tmp_path, BASELINE_BENCHES)
        assert (
            bench_report.main(["--repo-root", str(tmp_path), "--check"]) == 0
        )
        rows = bench_report.build_rows(
            bench_report.load_current(tmp_path, []), {}, 0.15
        )
        assert {row["status"] for row in rows} == {"no-baseline"}


class TestReportOutputs:
    def test_markdown_and_json_artifacts(self, repo, tmp_path):
        out_md = tmp_path / "report.md"
        out_json = tmp_path / "report.json"
        assert (
            bench_report.main(
                [
                    "--repo-root",
                    str(repo),
                    "--out-md",
                    str(out_md),
                    "--out-json",
                    str(out_json),
                ]
            )
            == 0
        )
        markdown = out_md.read_text()
        assert "# Benchmark trend report" in markdown
        assert "| BENCH_pipeline | `full_trial.fast_s` |" in markdown
        payload = json.loads(out_json.read_text())
        assert payload["problems"] == []
        assert len(payload["rows"]) == 24  # every headline metric present

    def test_committed_repo_headlines_all_resolve(self):
        # The real BENCH files must keep every headline metric live, or
        # the CI gate silently shrinks its coverage.
        problems = []
        current = bench_report.load_current(REPO_ROOT, problems)
        assert problems == []
        rows = bench_report.build_rows(current, {}, 0.15)
        assert all(row["current"] is not None for row in rows)
