"""Tests for the stdlib tools/ scripts."""
