"""Whole-pipeline parity: vectorized batch core vs the scalar oracle.

``use_vectorized_core=True`` promises *bit-identical* trials, not
statistically similar ones — the RNG stream-parity rules in
``docs/PERFORMANCE.md`` are what make that possible. These tests run
small deployments through both cores across the envelope axes that
select different vec tiers (fault-free wormhole configs take the turbo
tier; loss and fault envelopes take the per-delivery replay tier) and
compare the results with ``==``.
"""

from dataclasses import replace

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.faults.config import FaultConfig

BASE = PipelineConfig(
    n_total=120,
    n_beacons=18,
    n_malicious=3,
    field_width_ft=500.0,
    field_height_ft=500.0,
    rtt_calibration_samples=200,
    wormhole_endpoints=((100.0, 100.0), (380.0, 350.0)),
    seed=13,
)

FAULTS = FaultConfig(
    packet_loss_rate=0.05,
    packet_duplication_rate=0.03,
    duplicate_delay_cycles=5000.0,
    delivery_delay_rate=0.1,
    delivery_delay_cycles=2000.0,
    rtt_jitter_cycles=50.0,
    rtt_spike_rate=0.02,
    rtt_spike_cycles=30000.0,
    clock_drift_ppm=40.0,
)

CASES = {
    # Fault-free wormhole deployment: the fully array-built turbo tier.
    "turbo-wormhole": BASE,
    "turbo-no-wormhole": replace(BASE, wormhole_endpoints=None),
    "turbo-no-malicious": replace(BASE, n_malicious=0),
    "turbo-other-seed": replace(BASE, seed=101),
    # Positive false-alarm rates stay turbo-eligible: the ordered
    # verdict walk keeps the wormhole stream in scalar lockstep.
    "turbo-false-alarm": replace(BASE, wormhole_false_alarm_rate=0.1),
    "turbo-false-alarm-no-wormhole": replace(
        BASE, wormhole_endpoints=None, wormhole_false_alarm_rate=0.3
    ),
    # Loss and fault envelopes: the per-delivery replay tier.
    "replay-loss": replace(BASE, network_loss_rate=0.12),
    "replay-loss-false-alarm": replace(
        BASE, network_loss_rate=0.12, wormhole_false_alarm_rate=0.2
    ),
    "replay-faults": replace(BASE, faults=FAULTS),
    "replay-faults-loss": replace(
        BASE, faults=FAULTS, network_loss_rate=0.08, wormhole_endpoints=None
    ),
}


def _run(config, *, vectorized):
    pipeline = SecureLocalizationPipeline(
        replace(config, use_vectorized_core=vectorized)
    )
    return pipeline, pipeline.run()


@pytest.mark.parametrize("name", sorted(CASES))
def test_vectorized_core_reproduces_scalar_trial(name):
    config = CASES[name]
    scalar_pipeline, scalar_result = _run(config, vectorized=False)
    vec_pipeline, vec_result = _run(config, vectorized=True)

    assert not scalar_pipeline._vec_active
    assert vec_pipeline._vec_active

    # The headline contract: the PipelineResult compares equal — every
    # rate, counter, and the full localization-error list, to the bit.
    assert vec_result == scalar_result
    assert list(vec_result.localization_errors_ft) == list(
        scalar_result.localization_errors_ft
    )

    # Deeper state the result does not carry: per-prober probe verdicts
    # in order, and per-agent replay rejections.
    scalar_outcomes = [
        [(o.detecting_id, o.target_id, o.decision) for o in b.probe_outcomes]
        for b in scalar_pipeline.benign_beacons
    ]
    vec_outcomes = [
        [(o.detecting_id, o.target_id, o.decision) for o in b.probe_outcomes]
        for b in vec_pipeline.benign_beacons
    ]
    assert vec_outcomes == scalar_outcomes
    assert [a.rejected_replays for a in vec_pipeline.agents] == [
        a.rejected_replays for a in scalar_pipeline.agents
    ]
    # The simulated clock advanced to the same cycle in both worlds.
    assert vec_pipeline.engine.now() == scalar_pipeline.engine.now()


def test_turbo_tier_engaged_on_fault_free_config():
    """The fast tier must actually be selected where it is claimed to."""
    from repro.vec.turbo import turbo_supported

    pipeline = SecureLocalizationPipeline(
        replace(BASE, use_vectorized_core=True)
    )
    pipeline.build()
    assert turbo_supported(pipeline)

    lossy = SecureLocalizationPipeline(
        replace(BASE, use_vectorized_core=True, network_loss_rate=0.1)
    )
    lossy.build()
    assert not turbo_supported(lossy)

    faulty = SecureLocalizationPipeline(
        replace(BASE, use_vectorized_core=True, faults=FAULTS)
    )
    faulty.build()
    assert not turbo_supported(faulty)

    # A positive false-alarm rate no longer demotes the config to the
    # replay tier (the ordered verdict walk preserves stream parity).
    false_alarm = SecureLocalizationPipeline(
        replace(BASE, use_vectorized_core=True, wormhole_false_alarm_rate=0.2)
    )
    false_alarm.build()
    assert turbo_supported(false_alarm)
