"""Property tests: the ``repro.vec`` kernels vs their scalar references.

Every kernel claims *bit-identity* with the scalar code it replaces, so
these tests compare with ``==`` — never ``approx``. Hypothesis drives
randomized shapes (including empty and single-element batches), values
snapped onto the awkward range boundary, and NaN/inf coordinates, and
each RNG-consuming kernel is additionally checked to advance its stream
exactly as far as the scalar loop would.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.timing import RttModel
from repro.vec.geometry import (
    count_within_range,
    pairwise_distances,
    within_range_mask,
    within_range_matrix,
)
from repro.vec.measurement import (
    batched_calibration_rtts,
    batched_rtt,
    batched_uniform,
    discrepancy_mask,
    raw_uniforms,
    rtt_exceeds_mask,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coordinate = st.one_of(
    finite, st.sampled_from([0.0, -0.0, float("nan"), float("inf")])
)


# ----------------------------------------------------------------------
# RNG-stream kernels
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 2**31), n=st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_raw_uniforms_matches_scalar_draw_sequence(seed, n):
    vec_rng = random.Random(seed)
    ref_rng = random.Random(seed)
    raws = raw_uniforms(vec_rng, n)
    assert raws.tolist() == [ref_rng.random() for _ in range(n)]
    # Both streams ended in the same state: the next draw agrees.
    assert vec_rng.random() == ref_rng.random()


def test_raw_uniforms_rejects_negative_and_handles_empty():
    rng = random.Random(7)
    assert raw_uniforms(rng, 0).shape == (0,)
    assert rng.random() == random.Random(7).random()  # no draws consumed
    with pytest.raises(ConfigurationError):
        raw_uniforms(rng, -1)


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(0, 100),
    low=finite,
    high=finite,
)
@settings(max_examples=60, deadline=None)
def test_batched_uniform_bit_identical_to_scalar_uniform(seed, n, low, high):
    vec_rng = random.Random(seed)
    ref_rng = random.Random(seed)
    batch = batched_uniform(vec_rng, n, low, high)
    assert batch.tolist() == [ref_rng.uniform(low, high) for _ in range(n)]


@given(
    seed=st.integers(0, 2**31),
    specs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5e4, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        ),
        min_size=0,
        max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_batched_rtt_bit_identical_to_scalar_sample(seed, specs):
    model = RttModel()
    vec_rng = random.Random(seed)
    ref_rng = random.Random(seed)
    dists = np.array([s[0] for s in specs], dtype=np.float64)
    extras = np.array([s[1] for s in specs], dtype=np.float64)
    starts = np.array([s[2] for s in specs], dtype=np.float64)
    batch = batched_rtt(vec_rng, model, dists, extras, starts)
    reference = [
        model.sample(
            ref_rng,
            distance_ft=d,
            extra_delay_cycles=e,
            start_time=t,
        ).rtt
        for d, e, t in specs
    ]
    assert batch.tolist() == reference
    assert vec_rng.random() == ref_rng.random()


def test_batched_rtt_validates_like_the_scalar_sampler():
    model = RttModel()
    rng = random.Random(0)
    ok = np.zeros(2)
    with pytest.raises(ConfigurationError):
        batched_rtt(rng, model, np.array([-1.0, 0.0]), ok, ok)
    with pytest.raises(ConfigurationError):
        batched_rtt(rng, model, ok, np.array([0.0, -5.0]), ok)
    with pytest.raises(ConfigurationError):
        batched_rtt(rng, model, np.zeros(3), ok, ok)
    # Validation and the empty batch consume no draws.
    assert rng.random() == random.Random(0).random()
    empty = np.empty(0)
    assert batched_rtt(rng, model, empty, empty, empty).shape == (0,)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    samples=st.integers(min_value=1, max_value=64),
    distance=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_batched_calibration_rtts_bit_identical_to_scalar_loop(
    seed, samples, distance
):
    model = RttModel()
    vec_rng = random.Random(seed)
    ref_rng = random.Random(seed)
    batch = batched_calibration_rtts(model, vec_rng, samples, distance)
    reference = model.sample_rtts(ref_rng, samples, distance_ft=distance)
    assert batch == reference
    # Both paths consumed exactly the same draws: streams stay in step.
    assert vec_rng.random() == ref_rng.random()


def test_batched_calibration_rtts_rejects_nonpositive_counts():
    model = RttModel()
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        batched_calibration_rtts(model, rng, 0, 10.0)
    with pytest.raises(ConfigurationError):
        batched_calibration_rtts(model, rng, -3, 10.0)
    assert rng.random() == random.Random(0).random()  # no draws consumed


# ----------------------------------------------------------------------
# Geometry kernels
# ----------------------------------------------------------------------
@given(
    points=st.lists(st.tuples(coordinate, coordinate), max_size=30),
    center=st.tuples(finite, finite),
    radius=st.one_of(
        st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
        st.just(float("nan")),
    ),
    snap=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_within_range_mask_matches_scalar_hypot(points, center, radius, snap):
    xs = np.array([p[0] for p in points], dtype=np.float64)
    ys = np.array([p[1] for p in points], dtype=np.float64)
    cx, cy = center
    if snap and points and not math.isnan(radius):
        # The adversarial case: the radius exactly equals one point's
        # distance, putting it on the <= boundary.
        candidate = math.hypot(xs[0] - cx, ys[0] - cy)
        if math.isfinite(candidate):
            radius = candidate
    mask = within_range_mask(xs, ys, cx, cy, radius)
    expected = [
        math.hypot(float(x) - cx, float(y) - cy) <= radius
        for x, y in zip(xs, ys)
    ]
    assert mask.tolist() == expected
    assert count_within_range(xs, ys, cx, cy, radius) == sum(expected)


@given(
    points=st.lists(st.tuples(finite, finite), max_size=12),
    centers=st.lists(st.tuples(finite, finite), max_size=12),
    radius=st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
    snap=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_within_range_matrix_matches_scalar_all_pairs(
    points, centers, radius, snap
):
    xs = np.array([p[0] for p in points], dtype=np.float64)
    ys = np.array([p[1] for p in points], dtype=np.float64)
    cxs = np.array([c[0] for c in centers], dtype=np.float64)
    cys = np.array([c[1] for c in centers], dtype=np.float64)
    if snap and points and centers:
        radius = math.hypot(xs[0] - cxs[0], ys[0] - cys[0])
    matrix = within_range_matrix(xs, ys, cxs, cys, radius)
    assert matrix.shape == (len(centers), len(points))
    expected = [
        [
            math.hypot(float(x) - cx, float(y) - cy) <= radius
            for x, y in zip(xs, ys)
        ]
        for cx, cy in zip(cxs, cys)
    ]
    assert matrix.tolist() == expected
    # Row i of the matrix is exactly the single-center mask for row i.
    for i in range(len(centers)):
        assert (
            matrix[i].tolist()
            == within_range_mask(
                xs, ys, float(cxs[i]), float(cys[i]), radius
            ).tolist()
        )


def test_pairwise_distances_single_node_and_empty():
    assert pairwise_distances(np.empty(0), np.empty(0), 1.0, 2.0).shape == (0,)
    d = pairwise_distances(np.array([3.0]), np.array([4.0]), 0.0, 0.0)
    assert d.tolist() == [5.0]


# ----------------------------------------------------------------------
# Comparison-mask kernels
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore:invalid value:RuntimeWarning")
@given(
    rows=st.lists(
        st.tuples(coordinate, coordinate, st.floats(allow_nan=True)),
        max_size=30,
    ),
    scalar_threshold=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_discrepancy_mask_matches_scalar_comparison(rows, scalar_threshold):
    calc = np.array([r[0] for r in rows], dtype=np.float64)
    meas = np.array([r[1] for r in rows], dtype=np.float64)
    if scalar_threshold:
        thresholds = 42.5
        per_row = [42.5] * len(rows)
    else:
        thresholds = np.array([r[2] for r in rows], dtype=np.float64)
        per_row = [r[2] for r in rows]
    mask = discrepancy_mask(calc, meas, thresholds)
    expected = [
        abs(float(c) - float(m)) > t for c, m, t in zip(calc, meas, per_row)
    ]
    assert mask.tolist() == expected


@given(
    rtts=st.lists(st.floats(allow_nan=True), max_size=30),
    x_max=st.floats(allow_nan=True),
)
@settings(max_examples=60, deadline=None)
def test_rtt_exceeds_mask_matches_scalar_comparison(rtts, x_max):
    mask = rtt_exceeds_mask(np.array(rtts, dtype=np.float64), x_max)
    assert mask.tolist() == [float(r) > x_max for r in rtts]
