"""Tests for the sharded, persistent revocation service (repro.revocation)."""
