"""Persistence-backend contract tests (ledger + snapshot roundtrips)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.revocation import (
    BACKEND_KINDS,
    JsonlBackend,
    MemoryBackend,
    SqliteBackend,
    make_backend,
)


def fresh_backend(kind, tmp_path):
    """A new empty backend of the given kind under tmp_path."""
    return make_backend(kind, tmp_path / kind)


def records(*seqs):
    """Minimal ledger records for the given sequence numbers."""
    return [
        {
            "seq": seq,
            "detector": seq,
            "target": seq + 1,
            "accepted": True,
            "reason": "accepted",
            "revokes": False,
            "time": float(seq),
        }
        for seq in seqs
    ]


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestBackendContract:
    def test_roundtrip_in_order(self, kind, tmp_path):
        with fresh_backend(kind, tmp_path) as backend:
            backend.append_records(records(1, 2))
            backend.append_records(records(3))
            assert [r["seq"] for r in backend.read_records()] == [1, 2, 3]

    def test_read_after_seq(self, kind, tmp_path):
        with fresh_backend(kind, tmp_path) as backend:
            backend.append_records(records(1, 2, 3, 4))
            assert [r["seq"] for r in backend.read_records(2)] == [3, 4]

    def test_record_contents_survive(self, kind, tmp_path):
        with fresh_backend(kind, tmp_path) as backend:
            backend.append_records(records(7))
            (read,) = list(backend.read_records())
            assert read == records(7)[0]

    def test_snapshot_roundtrip_and_replace(self, kind, tmp_path):
        with fresh_backend(kind, tmp_path) as backend:
            assert backend.load_snapshot() is None
            backend.write_snapshot({"seq": 1, "state": {"revoked": [2]}})
            backend.write_snapshot({"seq": 9, "state": {"revoked": [2, 3]}})
            assert backend.load_snapshot() == {
                "seq": 9,
                "state": {"revoked": [2, 3]},
            }

    def test_empty_backend_reads_empty(self, kind, tmp_path):
        with fresh_backend(kind, tmp_path) as backend:
            assert list(backend.read_records()) == []


class TestDurableReopen:
    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_reopen_sees_committed_data(self, kind, tmp_path):
        backend = fresh_backend(kind, tmp_path)
        backend.append_records(records(1, 2))
        backend.write_snapshot({"seq": 2})
        backend.close()
        reopened = fresh_backend(kind, tmp_path)
        assert [r["seq"] for r in reopened.read_records()] == [1, 2]
        assert reopened.load_snapshot() == {"seq": 2}
        reopened.close()

    def test_memory_backend_is_shared_object_state(self):
        backend = MemoryBackend()
        backend.append_records(records(1))
        # "Reopen" for memory means reusing the same object — which is
        # exactly how the crash-recovery tests simulate a restart.
        assert [r["seq"] for r in backend.read_records()] == [1]


class TestJsonlTornWrites:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        backend = JsonlBackend(tmp_path / "j")
        backend.append_records(records(1, 2))
        backend.close()
        ledger = tmp_path / "j" / "ledger.jsonl"
        with open(ledger, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "detector"')  # crash mid-write
        reopened = JsonlBackend(tmp_path / "j")
        assert [r["seq"] for r in reopened.read_records()] == [1, 2]
        reopened.close()

    def test_corrupt_snapshot_reads_as_absent(self, tmp_path):
        backend = JsonlBackend(tmp_path / "j")
        (tmp_path / "j" / "snapshot.json").write_text("{not json")
        assert backend.load_snapshot() is None
        backend.close()

    def test_ledger_lines_are_canonical_json(self, tmp_path):
        backend = JsonlBackend(tmp_path / "j")
        backend.append_records(records(1))
        backend.close()
        line = (tmp_path / "j" / "ledger.jsonl").read_text().strip()
        assert json.loads(line)["seq"] == 1
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )


class TestSqliteBackend:
    def test_duplicate_seq_rejected(self, tmp_path):
        backend = SqliteBackend(tmp_path / "db.sqlite")
        backend.append_records(records(1))
        import sqlite3

        with pytest.raises(sqlite3.IntegrityError):
            backend.append_records(records(1))
        backend.close()

    def test_close_is_idempotent(self, tmp_path):
        backend = SqliteBackend(tmp_path / "db.sqlite")
        backend.close()
        backend.close()


class TestMakeBackend:
    def test_kinds(self, tmp_path):
        assert make_backend("memory").kind == "memory"
        with make_backend("jsonl", tmp_path / "j") as jsonl:
            assert jsonl.kind == "jsonl"
        with make_backend("sqlite", tmp_path / "s") as sqlite:
            assert sqlite.kind == "sqlite"

    def test_sqlite_path_inside_directory(self, tmp_path):
        backend = make_backend("sqlite", tmp_path)
        assert backend.path == tmp_path / "revocation.sqlite"
        backend.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("redis")

    def test_missing_path_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("jsonl")
        with pytest.raises(ConfigurationError):
            make_backend("sqlite")
