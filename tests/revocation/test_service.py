"""Service/BaseStation bit-identity and wave-scheduling tests (§3.1)."""

import asyncio
import random

import pytest

from repro.core.revocation import BaseStation, RevocationConfig
from repro.errors import ConfigurationError, RevocationError
from repro.obs import MetricsRegistry, ObserveConfig
from repro.revocation import MemoryBackend, RevocationService, partition_waves


def random_alerts(seed, n, n_nodes=12):
    """A deterministic random (detector, target, time) stream."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_nodes), rng.randrange(n_nodes), float(i))
        for i in range(n)
    ]


def station_for(key_manager, alerts, config):
    """An in-process BaseStation fed the same stream (ground truth)."""
    ids = {a[0] for a in alerts} | {a[1] for a in alerts}
    for i in ids:
        key_manager.enroll(i, is_beacon=True)
    station = BaseStation(key_manager, config)
    for detector, target, time in alerts:
        station.submit_alert(detector, target, verify=False, time=time)
    return station


def run_service(alerts, config, **kwargs):
    """Ingest the stream through a fresh service; (service, records)."""

    async def _run():
        service = RevocationService(config, **kwargs)
        await service.start()
        records = await service.ingest(alerts)
        await service.stop()
        return service, records

    return asyncio.run(_run())


class TestPartitionWaves:
    def test_empty(self):
        assert partition_waves([]) == []

    def test_independent_alerts_share_a_wave(self):
        waves = partition_waves([(1, 2), (3, 4), (5, 6)])
        assert waves == [[0, 1, 2]]

    def test_shared_detector_forces_sequencing(self):
        waves = partition_waves([(1, 2), (1, 3)])
        assert waves == [[0], [1]]

    def test_shared_target_forces_sequencing(self):
        waves = partition_waves([(1, 9), (2, 9)])
        assert waves == [[0], [1]]

    def test_waves_have_distinct_detectors_and_targets(self):
        items = [(d, t) for d, t, _ in random_alerts(5, 300, n_nodes=9)]
        waves = partition_waves(items)
        assert sorted(i for wave in waves for i in wave) == list(
            range(len(items))
        )
        for wave in waves:
            detectors = [items[i][0] for i in wave]
            targets = [items[i][1] for i in wave]
            assert len(set(detectors)) == len(detectors)
            assert len(set(targets)) == len(targets)

    def test_wave_order_respects_submission_order(self):
        # Within and across waves, indices only ever increase per
        # conflict chain: an item lands strictly after everything it
        # conflicts with.
        items = [(d, t) for d, t, _ in random_alerts(6, 200, n_nodes=7)]
        level_of = {}
        for level, wave in enumerate(partition_waves(items)):
            for i in wave:
                level_of[i] = level
        for j, (dj, tj) in enumerate(items):
            for i in range(j):
                di, ti = items[i]
                if di == dj or ti == tj:
                    assert level_of[i] < level_of[j]


class TestServiceEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    @pytest.mark.parametrize("batch_size", [1, 64, 1000])
    def test_bit_identical_to_base_station(
        self, key_manager, n_shards, batch_size
    ):
        config = RevocationConfig(tau_report=2, tau_alert=2)
        alerts = random_alerts(11, 400)
        station = station_for(key_manager, alerts, config)
        service, records = run_service(
            alerts, config, n_shards=n_shards, batch_size=batch_size
        )
        assert [(r.accepted, r.reason) for r in records] == [
            (r.accepted, r.reason) for r in station.log
        ]
        assert service.counter_state().to_dict() == station.state.to_dict()
        assert service.revoked == station.revoked
        for beacon in service.revoked:
            assert service.is_revoked(beacon)

    def test_zero_thresholds(self, key_manager):
        config = RevocationConfig(tau_report=0, tau_alert=0)
        alerts = random_alerts(2, 150, n_nodes=6)
        station = station_for(key_manager, alerts, config)
        service, records = run_service(alerts, config, n_shards=3)
        assert [(r.accepted, r.reason) for r in records] == [
            (r.accepted, r.reason) for r in station.log
        ]
        assert service.counter_state().to_dict() == station.state.to_dict()

    def test_registry_snapshot_matches_record_metrics(self, key_manager):
        config = RevocationConfig()
        alerts = random_alerts(13, 300)
        station = station_for(key_manager, alerts, config)
        registry = MetricsRegistry()
        station.record_metrics(registry)
        service, _ = run_service(alerts, config, n_shards=5)
        assert service.registry_snapshot() == registry.snapshot()

    def test_on_revoke_fires_in_station_order(self, key_manager):
        config = RevocationConfig(tau_report=10, tau_alert=1)
        alerts = random_alerts(17, 250, n_nodes=8)
        station_events = []
        ids = {a[0] for a in alerts} | {a[1] for a in alerts}
        for i in ids:
            key_manager.enroll(i, is_beacon=True)
        station = BaseStation(
            key_manager, config, on_revoke=station_events.append
        )
        for detector, target, time in alerts:
            station.submit_alert(detector, target, verify=False, time=time)
        service_events = []
        run_service(
            alerts, config, n_shards=4, on_revoke=service_events.append
        )
        assert service_events == station_events


class TestServiceAuth:
    def test_bad_auth_rejected_without_counting(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2, is_beacon=True)
        payload = BaseStation.alert_payload(1, 2)
        good_tag = key_manager.sign_alert_payload(1, payload)

        async def _run():
            service = RevocationService(
                RevocationConfig(), key_manager=key_manager, n_shards=2
            )
            await service.start()
            bad = await service.submit(1, 2, tag=b"forged", verify=True)
            good = await service.submit(1, 2, tag=good_tag, verify=True)
            missing = await service.submit(1, 2, verify=True)
            await service.stop()
            return service, bad.result(), good.result(), missing.result()

        service, bad, good, missing = asyncio.run(_run())
        assert (bad.accepted, bad.reason) == (False, "bad-auth")
        assert (good.accepted, good.reason) == (True, "accepted")
        assert (missing.accepted, missing.reason) == (False, "bad-auth")
        state = service.counter_state()
        assert state.alert_counters == {2: 1}
        assert state.report_counters == {1: 1}

    def test_verify_without_key_manager_is_bad_auth(self):
        async def _run():
            service = RevocationService(RevocationConfig())
            await service.start()
            record = await service.submit(1, 2, tag=b"x", verify=True)
            await service.stop()
            return record.result()

        record = asyncio.run(_run())
        assert (record.accepted, record.reason) == (False, "bad-auth")


class TestServiceLifecycle:
    def test_submit_before_start_raises(self):
        async def _run():
            service = RevocationService(RevocationConfig())
            with pytest.raises(RevocationError):
                await service.submit(1, 2)

        asyncio.run(_run())

    def test_crashed_service_rejects_use(self):
        async def _run():
            service = RevocationService(RevocationConfig())
            await service.start()
            await service.ingest([(1, 2, 0.0)])
            service.crash()
            with pytest.raises(RevocationError):
                await service.submit(3, 4)
            with pytest.raises(RevocationError):
                await service.flush()

        asyncio.run(_run())

    def test_crash_cancels_pending_futures(self):
        async def _run():
            service = RevocationService(
                RevocationConfig(), batch_size=1000
            )
            await service.start()
            future = await service.submit(1, 2)
            service.crash()
            return future

        future = asyncio.run(_run())
        assert future.cancelled()

    def test_start_is_idempotent(self):
        async def _run():
            service = RevocationService(RevocationConfig(), n_shards=2)
            await service.start()
            await service.start()
            records = await service.ingest([(1, 2, 0.0)])
            await service.stop()
            return records

        records = asyncio.run(_run())
        assert records[0].accepted

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            RevocationService(RevocationConfig(), n_shards=0)
        with pytest.raises(ConfigurationError):
            RevocationService(RevocationConfig(), batch_size=0)
        with pytest.raises(ConfigurationError):
            RevocationService(RevocationConfig(), snapshot_every=0)


class TestServiceObservability:
    def test_operational_counters(self):
        alerts = random_alerts(3, 100, n_nodes=6)

        async def _run():
            service = RevocationService(
                RevocationConfig(),
                n_shards=2,
                batch_size=32,
                observe=ObserveConfig(),
            )
            await service.start()
            await service.ingest(alerts)
            await service.snapshot()
            await service.stop()
            return service.telemetry()

        telemetry = asyncio.run(_run())
        counters = telemetry["registry"]["counters"]
        assert counters["svc_alerts_ingested_total"] == len(alerts)
        assert counters["svc_batches_total"] >= 1
        assert counters["svc_waves_total"] >= 1
        assert counters["svc_snapshots_total"] == 1
        dispatched = sum(
            value
            for key, value in counters.items()
            if key.startswith("svc_shard_dispatch_total")
        )
        assert dispatched <= len(alerts)
        assert any(span["name"] == "svc:flush" for span in telemetry["spans"])

    def test_observe_none_has_no_telemetry(self):
        service, _ = run_service(
            random_alerts(4, 50), RevocationConfig(), n_shards=2
        )
        assert service.telemetry() == {}

    def test_observability_never_changes_decisions(self):
        config = RevocationConfig()
        alerts = random_alerts(21, 200)
        plain, plain_records = run_service(alerts, config, n_shards=3)
        observed, observed_records = run_service(
            alerts, config, n_shards=3, observe=ObserveConfig()
        )
        assert [(r.accepted, r.reason) for r in plain_records] == [
            (r.accepted, r.reason) for r in observed_records
        ]
        assert (
            plain.counter_state().to_dict()
            == observed.counter_state().to_dict()
        )
