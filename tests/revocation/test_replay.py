"""Sweep-replay identity: service decisions equal the in-process run."""

import pytest

from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.runner import ExperimentRunner
from repro.revocation import (
    capture_stream,
    capture_streams,
    make_backend,
    replay_stream,
    replay_sweep,
)


def small_config(seed):
    """A reduced deployment that still raises a handful of alerts."""
    return PipelineConfig(
        n_total=160,
        n_beacons=24,
        n_malicious=4,
        rtt_calibration_samples=200,
        seed=seed,
    )


@pytest.fixture(scope="module")
def sweep_streams():
    """Captured alert streams of a small Monte-Carlo sweep (3 trials)."""
    return capture_streams([small_config(seed) for seed in range(3)])


class TestCapture:
    def test_capture_freezes_ground_truth(self, sweep_streams):
        stream = sweep_streams[0]
        assert stream.key == "seed=0"
        assert len(stream.alerts) == len(stream.expected_log)
        assert stream.alerts, "reduced deployment should still raise alerts"
        # Pipeline streams are MAC-authenticated before submission, so
        # the captured ground truth never contains bad-auth rejections.
        assert all(
            reason != "bad-auth" for _, reason in stream.expected_log
        )

    def test_capture_through_runner_matches_serial(self, sweep_streams):
        runner = ExperimentRunner(n_workers=2)
        parallel = capture_streams(
            [small_config(seed) for seed in range(3)], runner
        )
        assert parallel == list(sweep_streams)


class TestSweepReplayIdentity:
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_identical_for_any_shard_count(self, sweep_streams, n_shards):
        for report in replay_sweep(sweep_streams, n_shards=n_shards):
            assert report.identical, report.to_dict()

    @pytest.mark.parametrize("restart_fraction", [0.0, 0.5, 1.0])
    def test_identical_with_injected_restart(
        self, sweep_streams, restart_fraction
    ):
        reports = replay_sweep(
            sweep_streams,
            n_shards=3,
            batch_size=8,
            restart_fraction=restart_fraction,
            snapshot_every=10,
        )
        for report in reports:
            assert report.identical, report.to_dict()
            assert report.restart_after is not None

    @pytest.mark.parametrize("kind", ["jsonl", "sqlite"])
    def test_identical_on_durable_backends(
        self, sweep_streams, tmp_path, kind
    ):
        stream = sweep_streams[0]
        backend = make_backend(kind, tmp_path / kind)
        try:
            report = replay_stream(
                stream,
                n_shards=4,
                backend=backend,
                batch_size=8,
                restart_after=len(stream.alerts) // 2,
            )
            assert report.identical, report.to_dict()
        finally:
            backend.close()

    def test_report_shape(self, sweep_streams):
        report = replay_stream(sweep_streams[0], n_shards=2)
        data = report.to_dict()
        assert data["identical"] is True
        assert data["backend"] == "memory"
        assert data["n_alerts"] == len(sweep_streams[0].alerts)
        assert data["mismatches"] == []

    def test_divergence_is_reported(self, sweep_streams):
        stream = sweep_streams[0]
        tampered = type(stream)(
            key=stream.key,
            tau_report=stream.tau_report,
            tau_alert=stream.tau_alert,
            alerts=stream.alerts,
            expected_log=((not stream.expected_log[0][0], "tampered"),)
            + stream.expected_log[1:],
            expected_state=dict(stream.expected_state, revoked=[999]),
        )
        report = replay_stream(tampered, n_shards=2)
        assert not report.identical
        assert not report.decisions_match
        assert not report.state_match
        assert report.mismatches

    def test_restart_bounds_checked(self, sweep_streams):
        with pytest.raises(ConfigurationError):
            replay_stream(sweep_streams[0], restart_after=-1)
        with pytest.raises(ConfigurationError):
            replay_sweep(sweep_streams, restart_fraction=1.5)


class TestDeterminism:
    def test_capture_is_deterministic(self):
        assert capture_stream(small_config(1)) == capture_stream(
            small_config(1)
        )


class TestCli:
    def test_revocation_target_passes(self, capsys):
        assert main(["revocation", "--trials", "1", "--shards", "3"]) == 0
        err = capsys.readouterr().err
        assert "0 divergence(s)" in err

    def test_revocation_target_durable_with_restart(self, tmp_path):
        assert (
            main(
                [
                    "revocation",
                    "--trials",
                    "1",
                    "--persistence",
                    "sqlite",
                    "--state-dir",
                    str(tmp_path),
                    "--restart-fraction",
                    "0.5",
                    "--quiet",
                ]
            )
            == 0
        )
        assert (tmp_path / "stream-0").exists()
