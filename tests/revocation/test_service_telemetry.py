"""Scraping a live RevocationService: /metrics, /healthz, /spans.

The §3 base station runs as an always-on service; an operator must be
able to scrape it *while it runs* and see liveness (pending alerts,
ledger lag, per-shard depth, flush latency) without the scrape touching
the deterministic decision state. These tests drive real HTTP requests
against a service mid-run.
"""

import asyncio
import json
import random
import urllib.error
import urllib.request

import pytest

from repro.obs import ObserveConfig
from repro.revocation import RevocationService


def random_alerts(seed, n, n_nodes=12):
    """A deterministic random (detector, target, time) stream."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_nodes), rng.randrange(n_nodes), float(i))
        for i in range(n)
    ]


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestLiveScrape:
    def test_metrics_exposes_liveness_gauges_mid_run(self):
        async def _run():
            service = RevocationService(
                n_shards=3, observe=ObserveConfig(), telemetry_port=0
            )
            await service.start()
            await service.ingest(random_alerts(1, 40))
            url = service.telemetry_server.url
            status, metrics = _get(url + "/metrics")
            _, health = _get(url + "/healthz")
            _, spans = _get(url + "/spans")
            await service.stop()
            return status, metrics, health, spans

        status, metrics, health, spans = asyncio.run(_run())
        assert status == 200
        lines = metrics.splitlines()
        assert "svc_pending_alerts 0" in lines  # ingest flushed everything
        assert "svc_ledger_seq_lag" in metrics
        for shard in range(3):
            assert f'svc_shard_pending_alerts{{shard="{shard}"}}' in metrics
        # Wall-clock flush latency lives only in the live plane.
        assert "svc_flush_latency_seconds_count" in metrics
        assert "# TYPE svc_flush_latency_seconds histogram" in metrics
        # Deterministic §3.1 + svc_* series ride along in the same scrape.
        assert "revocations_total" in metrics
        assert "svc_alerts_ingested_total" in metrics
        payload = json.loads(health)
        assert payload["status"] == "ok" and payload["last_seq"] == 40
        assert any(s["name"] == "svc:flush" for s in json.loads(spans))

    def test_healthz_503_before_start_and_after_crash(self):
        async def _run():
            service = RevocationService(telemetry_port=0)
            # Start the server by hand pre-start to probe the down state.
            from repro.obs import TelemetryServer

            server = TelemetryServer(
                service.live_snapshot, health_fn=service._health
            ).start()
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server.url + "/healthz")
                # Close the HTTPError: it wraps the response socket.
                with excinfo.value as error:
                    before = error.code
            finally:
                server.stop()

            await service.start()
            url = service.telemetry_server.url
            ok_status, _ = _get(url + "/healthz")
            service.crash()
            return before, ok_status, service.telemetry_server

        before, ok_status, server_after_crash = asyncio.run(_run())
        assert before == 503
        assert ok_status == 200
        assert server_after_crash is None  # crash tears the server down

    def test_stop_tears_the_server_down(self):
        async def _run():
            service = RevocationService(telemetry_port=0)
            await service.start()
            url = service.telemetry_server.url
            await service.stop()
            return url, service.telemetry_server

        url, server = asyncio.run(_run())
        assert server is None
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            _get(url + "/healthz")

    def test_no_telemetry_port_means_no_live_plane(self):
        async def _run():
            service = RevocationService()
            await service.start()
            await service.ingest(random_alerts(2, 10))
            snapshot = service.live_snapshot()
            await service.stop()
            return service, snapshot

        service, snapshot = asyncio.run(_run())
        assert service.telemetry_server is None
        # live_snapshot still works for ad-hoc inspection; liveness
        # gauges are present, wall-clock histograms are not.
        assert "svc_pending_alerts" in snapshot["gauges"]
        assert "svc_flush_latency_seconds" not in snapshot["histograms"]

    def test_scrapes_leave_decisions_bit_identical(self):
        alerts = random_alerts(3, 30)

        async def _run(telemetry_port):
            service = RevocationService(
                n_shards=2, telemetry_port=telemetry_port
            )
            await service.start()
            records = await service.ingest(alerts)
            if service.telemetry_server is not None:
                _get(service.telemetry_server.url + "/metrics")
            await service.stop()
            return [r.to_dict() for r in records]

        assert asyncio.run(_run(0)) == asyncio.run(_run(None))
