"""Crash-recovery tests: ledger + snapshot replay reconverges exactly."""

import asyncio
import random

import pytest

from repro.core.revocation import BaseStation, RevocationConfig
from repro.errors import ConfigurationError, RevocationError
from repro.revocation import BACKEND_KINDS, MemoryBackend, RevocationService, make_backend


def random_alerts(seed, n, n_nodes=10):
    """A deterministic random (detector, target, time) stream."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_nodes), rng.randrange(n_nodes), float(i))
        for i in range(n)
    ]


def ground_truth(key_manager, alerts, config):
    """The uninterrupted in-process run the recovered service must match."""
    ids = {a[0] for a in alerts} | {a[1] for a in alerts}
    for i in ids:
        key_manager.enroll(i, is_beacon=True)
    station = BaseStation(key_manager, config)
    for detector, target, time in alerts:
        station.submit_alert(detector, target, verify=False, time=time)
    return station


def run_with_crash(
    alerts,
    config,
    backend,
    *,
    crash_after,
    n_shards=4,
    recover_shards=None,
    batch_size=16,
    snapshot_every=None,
):
    """Ingest with a hard crash after ``crash_after`` submissions.

    Returns the recovered service after it has reingested the lost
    suffix and the rest of the stream.
    """

    async def _run():
        service = RevocationService(
            config,
            n_shards=n_shards,
            backend=backend,
            batch_size=batch_size,
            snapshot_every=snapshot_every,
        )
        await service.start()
        for detector, target, time in alerts[:crash_after]:
            await service.submit(detector, target, time=time)
        service.crash()
        # Only auto-flushed batches survived; a buffered partial batch
        # died with the process.
        service = RevocationService(
            config,
            n_shards=recover_shards if recover_shards is not None else n_shards,
            backend=backend,
            batch_size=batch_size,
            snapshot_every=snapshot_every,
        )
        await service.start()
        for detector, target, time in alerts[service.last_seq :]:
            await service.submit(detector, target, time=time)
        await service.stop()
        return service

    return asyncio.run(_run())


class TestCrashRecovery:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    @pytest.mark.parametrize("snapshot_every", [None, 20])
    def test_bit_identical_after_crash(
        self, key_manager, tmp_path, kind, snapshot_every
    ):
        config = RevocationConfig(tau_report=2, tau_alert=2)
        alerts = random_alerts(31, 200)
        station = ground_truth(key_manager, alerts, config)
        backend = make_backend(kind, tmp_path / kind)
        try:
            service = run_with_crash(
                alerts,
                config,
                backend,
                crash_after=len(alerts) // 2,
                snapshot_every=snapshot_every,
            )
            assert [(r.accepted, r.reason) for r in service.decisions] == [
                (r.accepted, r.reason) for r in station.log
            ]
            assert (
                service.counter_state().to_dict() == station.state.to_dict()
            )
            assert service.revoked == station.revoked
        finally:
            backend.close()

    @pytest.mark.parametrize("crash_after", [0, 1, 37, 199, 200])
    def test_any_crash_point(self, key_manager, crash_after):
        config = RevocationConfig()
        alerts = random_alerts(41, 200)
        station = ground_truth(key_manager, alerts, config)
        service = run_with_crash(
            alerts,
            config,
            MemoryBackend(),
            crash_after=crash_after,
        )
        assert service.counter_state().to_dict() == station.state.to_dict()

    def test_recovery_under_different_shard_count(self, key_manager):
        # Shard placement is derived from the target id, never stored,
        # so a recovered service may use any shard count.
        config = RevocationConfig()
        alerts = random_alerts(43, 150)
        station = ground_truth(key_manager, alerts, config)
        service = run_with_crash(
            alerts,
            config,
            MemoryBackend(),
            crash_after=75,
            n_shards=3,
            recover_shards=7,
        )
        assert service.counter_state().to_dict() == station.state.to_dict()

    def test_double_crash(self, key_manager):
        config = RevocationConfig()
        alerts = random_alerts(47, 180)
        station = ground_truth(key_manager, alerts, config)
        backend = MemoryBackend()

        async def _run():
            service = RevocationService(
                config, backend=backend, batch_size=8
            )
            await service.start()
            for detector, target, time in alerts[:60]:
                await service.submit(detector, target, time=time)
            service.crash()
            service = RevocationService(
                config, backend=backend, batch_size=8
            )
            await service.start()
            for detector, target, time in alerts[service.last_seq : 130]:
                await service.submit(detector, target, time=time)
            await service.snapshot()
            service.crash()
            service = RevocationService(
                config, backend=backend, batch_size=8
            )
            await service.start()
            for detector, target, time in alerts[service.last_seq :]:
                await service.submit(detector, target, time=time)
            await service.stop()
            return service

        service = asyncio.run(_run())
        assert service.counter_state().to_dict() == station.state.to_dict()
        assert [(r.accepted, r.reason) for r in service.decisions] == [
            (r.accepted, r.reason) for r in station.log
        ]


class TestRecoveryValidation:
    def _committed_backend(self, alerts):
        backend = MemoryBackend()

        async def _run():
            service = RevocationService(
                RevocationConfig(), backend=backend, batch_size=16
            )
            await service.start()
            await service.ingest(alerts)
            await service.stop()

        asyncio.run(_run())
        return backend

    def test_tampered_ledger_fails_self_check(self):
        backend = self._committed_backend(random_alerts(53, 80))
        victim = next(r for r in backend.records if r["accepted"])
        victim["accepted"] = False
        victim["reason"] = "quota-exceeded"

        async def _recover():
            service = RevocationService(RevocationConfig(), backend=backend)
            await service.start()

        with pytest.raises(RevocationError, match="disagrees"):
            asyncio.run(_recover())

    def test_ledger_gap_detected(self):
        backend = self._committed_backend(random_alerts(59, 80))
        del backend.records[10]

        async def _recover():
            service = RevocationService(RevocationConfig(), backend=backend)
            await service.start()

        with pytest.raises(RevocationError, match="gap"):
            asyncio.run(_recover())

    def test_threshold_mismatch_rejected(self):
        backend = MemoryBackend()

        async def _seed():
            service = RevocationService(
                RevocationConfig(tau_report=2, tau_alert=2), backend=backend
            )
            await service.start()
            await service.ingest(random_alerts(61, 40))
            await service.snapshot()
            await service.stop()

        asyncio.run(_seed())

        async def _recover():
            service = RevocationService(
                RevocationConfig(tau_report=1, tau_alert=2), backend=backend
            )
            await service.start()

        with pytest.raises(ConfigurationError, match="thresholds"):
            asyncio.run(_recover())

    def test_recovery_preserves_decision_log(self, key_manager):
        config = RevocationConfig()
        alerts = random_alerts(67, 90)
        station = ground_truth(key_manager, alerts, config)
        backend = self._committed_backend(alerts)

        async def _recover():
            service = RevocationService(config, backend=backend)
            await service.start()
            await service.stop()
            return service

        service = asyncio.run(_recover())
        assert [(r.detector_id, r.target_id, r.accepted, r.reason, r.time) for r in service.decisions] == [
            (r.detector_id, r.target_id, r.accepted, r.reason, r.time)
            for r in station.log
        ]
        assert service.last_seq == len(alerts)
