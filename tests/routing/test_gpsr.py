"""Tests for GPSR routing over believed positions."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.routing.gpsr import GpsrRouter, _segments_cross
from repro.routing.metrics import delivery_ratio, mean_path_stretch, physical_graph
from repro.routing.table import PositionTable
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def build_network(points, comm_range=150.0):
    from repro.sim.radio import RadioModel

    engine = Engine()
    net = Network(
        engine, rngs=RngRegistry(1), radio=RadioModel(comm_range_ft=comm_range)
    )
    for i, p in enumerate(points, start=1):
        net.add_node(Node(i, p))
    return net


def grid_points(side, spacing=100.0):
    return [
        Point(i * spacing, j * spacing) for i in range(side) for j in range(side)
    ]


class TestPositionTable:
    def test_ground_truth(self):
        net = build_network([Point(0, 0), Point(50, 0)])
        table = PositionTable.ground_truth(net)
        assert table.position_of(1) == Point(0, 0)
        assert table.believed_distance(1, 2) == pytest.approx(50.0)

    def test_unknown_position_raises(self):
        with pytest.raises(ConfigurationError):
            PositionTable().position_of(9)

    def test_from_estimates_with_fallback(self):
        net = build_network([Point(0, 0), Point(50, 0)])
        table = PositionTable.from_estimates(net, {2: Point(60, 0)})
        assert table.position_of(1) == Point(0, 0)  # fallback
        assert table.position_of(2) == Point(60, 0)  # estimate

    def test_from_estimates_without_fallback(self):
        net = build_network([Point(0, 0), Point(50, 0)])
        table = PositionTable.from_estimates(
            net, {2: Point(60, 0)}, fallback_to_truth=False
        )
        assert not table.knows(1)


class TestSegmentsCross:
    def test_crossing(self):
        assert _segments_cross(
            Point(0, 0), Point(10, 10), Point(0, 10), Point(10, 0)
        )

    def test_parallel(self):
        assert not _segments_cross(
            Point(0, 0), Point(10, 0), Point(0, 5), Point(10, 5)
        )

    def test_touching_endpoint_not_proper(self):
        assert not _segments_cross(
            Point(0, 0), Point(10, 0), Point(10, 0), Point(10, 10)
        )


class TestGreedyRouting:
    def test_straight_line_delivery(self):
        net = build_network([Point(i * 100.0, 0) for i in range(6)])
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        result = router.route(1, 6)
        assert result.delivered
        assert result.path == [1, 2, 3, 4, 5, 6]
        assert result.perimeter_hops == 0

    def test_self_delivery(self):
        net = build_network([Point(0, 0)])
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        result = router.route(1, 1)
        assert result.delivered
        assert result.hops == 0

    def test_grid_delivery(self):
        net = build_network(grid_points(6))
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        result = router.route(1, 36)  # opposite corners
        assert result.delivered
        assert result.hops >= 5  # at least the Chebyshev-ish distance

    def test_unknown_destination(self):
        net = build_network([Point(0, 0), Point(50, 0)])
        table = PositionTable({1: Point(0, 0)})
        router = GpsrRouter(net, table)
        result = router.route(1, 2)
        assert not result.delivered
        assert result.failure_reason == "unknown-position"

    def test_disconnected_fails(self):
        net = build_network([Point(0, 0), Point(10_000, 0)])
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        result = router.route(1, 2)
        assert not result.delivered

    def test_hop_limit_guards(self):
        net = build_network(grid_points(4))
        router = GpsrRouter(net, PositionTable.ground_truth(net), hop_limit=1)
        result = router.route(1, 16)
        assert not result.delivered
        assert result.failure_reason in ("hop-limit", "")


class TestPerimeterRouting:
    def c_shaped_network(self):
        """A void between source and destination: greedy alone dead-ends."""
        points = []
        # Left column, top row, right column of a C — plus src/dst inside
        # the opening so greedy runs straight into the void.
        for j in range(5):
            points.append(Point(0.0, j * 100.0))  # left wall
        for i in range(1, 5):
            points.append(Point(i * 100.0, 400.0))  # top wall
        for j in range(4):
            points.append(Point(400.0, j * 100.0))  # right wall
        points.append(Point(0.0, -100.0))  # src below the left wall
        points.append(Point(400.0, -100.0))  # dst below the right wall
        return build_network(points, comm_range=150.0)

    def test_void_requires_perimeter_mode(self):
        net = self.c_shaped_network()
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        src = 14  # Point(0, -100)
        dst = 15  # Point(400, -100)
        result = router.route(src, dst)
        assert result.delivered
        assert result.perimeter_hops > 0  # greedy alone could not cross

    def test_planarization_keeps_graph_connected_enough(self):
        net = build_network(grid_points(5))
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        for node in net.nodes():
            planar = router.planar_neighbors(node.node_id)
            assert planar  # Gabriel graph never isolates a connected node

    def test_gabriel_removes_long_diagonals(self):
        # Unit square + center: diagonals of the square are blocked by the
        # center witness.
        pts = [
            Point(0, 0),
            Point(100, 0),
            Point(0, 100),
            Point(100, 100),
            Point(50, 50),
        ]
        net = build_network(pts, comm_range=150.0)
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        assert 4 not in router.planar_neighbors(1)  # corner-to-corner cut
        assert 5 in router.planar_neighbors(1)  # center kept


class TestCorruptedPositions:
    def test_random_corruption_hurts_delivery(self):
        rng = random.Random(5)
        net = build_network(grid_points(7, spacing=90.0))
        truth = PositionTable.ground_truth(net)
        corrupted = PositionTable.ground_truth(net)
        ids = [n.node_id for n in net.nodes()]
        for node_id in rng.sample(ids, 15):
            corrupted.set(
                node_id,
                Point(rng.uniform(0, 600), rng.uniform(0, 600)),
            )
        pairs = [
            (rng.choice(ids), rng.choice(ids)) for _ in range(60)
        ]
        clean = delivery_ratio(GpsrRouter(net, truth), pairs)
        dirty = delivery_ratio(GpsrRouter(net, corrupted), pairs)
        assert clean == pytest.approx(1.0)
        assert dirty < clean

    def test_stretch_reasonable_on_clean_grid(self):
        rng = random.Random(6)
        net = build_network(grid_points(6))
        router = GpsrRouter(net, PositionTable.ground_truth(net))
        ids = [n.node_id for n in net.nodes()]
        pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(40)]
        stretch = mean_path_stretch(router, pairs)
        assert 1.0 <= stretch < 1.6

    def test_physical_graph_matches_radio(self):
        net = build_network([Point(0, 0), Point(100, 0), Point(400, 0)])
        g = physical_graph(net)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 3)
