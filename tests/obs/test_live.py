"""Live telemetry plane: trace contexts, namespaced ids, scrape server.

The contracts pinned here keep stitched traces trustworthy: span ids
minted under a namespace never repeat within a process (a stitched trace
with duplicate ids cannot resolve its cross-process edges), trace
contexts survive a serialize/deserialize round trip through a task
manifest, and the scrape endpoints answer with well-formed payloads —
including the 503 an unhealthy service must return so probes notice.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Observability,
    SpanRing,
    TelemetryServer,
    TraceContext,
    new_trace_id,
    process_span_namespace,
    process_trace_context,
    queue_liveness_snapshot,
    set_process_span_namespace,
    set_process_trace_context,
    span_event_lines,
)
from repro.obs.live import append_event_lines, namespace_counter


@pytest.fixture(autouse=True)
def _clean_process_state():
    """Never leak a namespace or trace context into other tests."""
    previous_namespace = process_span_namespace()
    previous_context = process_trace_context()
    yield
    set_process_span_namespace(previous_namespace)
    set_process_trace_context(previous_context)


class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext(trace_id="abc123", parent_span_id="coord:4")
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_default_parent_is_root(self):
        context = TraceContext(trace_id="abc123")
        assert context.parent_span_id == ""
        assert context.to_dict() == {
            "trace_id": "abc123",
            "parent_span_id": "",
        }

    @pytest.mark.parametrize(
        "data", [{}, {"trace_id": ""}, {"trace_id": None}, {"trace_id": 7}]
    )
    def test_bad_trace_id_rejected(self, data):
        with pytest.raises(ConfigurationError):
            TraceContext.from_dict(data)

    def test_new_trace_id_is_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(16)}
        assert len(ids) == 16
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)  # raises on non-hex


class TestProcessState:
    def test_namespace_set_get_clear(self):
        set_process_span_namespace("w3")
        assert process_span_namespace() == "w3"
        set_process_span_namespace(None)
        assert process_span_namespace() is None

    def test_trace_context_set_get_clear(self):
        context = TraceContext(trace_id=new_trace_id(), parent_span_id="c:1")
        set_process_trace_context(context)
        assert process_trace_context() == context
        set_process_trace_context(None)
        assert process_trace_context() is None

    def test_namespace_counter_shared_across_observabilities(self):
        # Two trials in one worker process must not both mint "<ns>:1";
        # the serial counter is per-namespace process state.
        namespace = "test-shared-ns"
        first = Observability(namespace=namespace)
        with first.span("trial"):
            pass
        second = Observability(namespace=namespace)
        with second.span("trial"):
            pass
        assert first.spans[0]["id"] == f"{namespace}:1"
        assert second.spans[0]["id"] == f"{namespace}:2"

    def test_namespace_counters_independent(self):
        assert next(namespace_counter("test-ns-a")) == 1
        assert next(namespace_counter("test-ns-b")) == 1
        assert next(namespace_counter("test-ns-a")) == 2


class TestNamespacedObservability:
    def test_namespaced_ids_and_parent_links(self):
        obs = Observability(namespace="test-links")
        with obs.span("trial"):
            with obs.span("phase:build"):
                pass
        build, trial = obs.spans
        assert trial["id"] == "test-links:1"
        assert build["id"] == "test-links:2"
        assert build["parent"] == trial["id"]
        assert trial["parent"] == 0  # local root stays a root

    def test_trace_context_lands_on_root_attrs_only(self):
        context = TraceContext(trace_id="feed0", parent_span_id="coord:9")
        obs = Observability(namespace="test-ctx", trace_context=context)
        with obs.span("trial"):
            with obs.span("phase:build"):
                pass
        build, trial = obs.spans
        assert trial["attrs"]["trace_id"] == "feed0"
        assert trial["attrs"]["remote_parent"] == "coord:9"
        assert "trace_id" not in build["attrs"]
        assert "remote_parent" not in build["attrs"]

    def test_rootless_context_omits_remote_parent(self):
        context = TraceContext(trace_id="feed1")
        obs = Observability(namespace="test-root", trace_context=context)
        with obs.span("trial"):
            pass
        attrs = obs.spans[0]["attrs"]
        assert attrs["trace_id"] == "feed1"
        assert "remote_parent" not in attrs

    def test_process_defaults_adopted_at_construction(self):
        context = TraceContext(trace_id="feed2", parent_span_id="coord:1")
        set_process_span_namespace("test-ambient")
        set_process_trace_context(context)
        obs = Observability()
        assert obs.namespace == "test-ambient"
        assert obs.trace_context == context

    def test_telemetry_carries_stitching_fields(self):
        context = TraceContext(trace_id="feed3", parent_span_id="coord:2")
        obs = Observability(namespace="test-telemetry", trace_context=context)
        with obs.span("trial"):
            pass
        telemetry = obs.telemetry()
        assert telemetry["process"] == "test-telemetry"
        assert telemetry["trace"] == context.to_dict()
        assert telemetry["wall0_epoch"] > 0

    def test_unnamespaced_ids_stay_plain_ints(self):
        obs = Observability()
        with obs.span("trial"):
            pass
        assert obs.spans[0]["id"] == 1
        telemetry = obs.telemetry()
        assert "process" not in telemetry and "trace" not in telemetry


class TestSpanRing:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            SpanRing(capacity=0)

    def test_append_extend_and_eviction(self):
        ring = SpanRing(capacity=3)
        ring.append({"id": 1})
        ring.extend([{"id": 2}, {"id": 3}, {"id": 4}])
        assert [span["id"] for span in ring.recent()] == [2, 3, 4]

    def test_recent_returns_copies(self):
        ring = SpanRing()
        ring.append({"id": 1})
        ring.recent()[0]["id"] = 99
        assert ring.recent() == [{"id": 1}]


def _scrape(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestTelemetryServer:
    def test_metrics_healthz_spans_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("queue_tasks_total").inc(5)
        registry.gauge("queue_depth").set(2)
        server = TelemetryServer(
            registry.snapshot,
            spans_fn=lambda: [{"id": "w0:1", "name": "trial"}],
        )
        with server:
            assert server.port > 0 and server.url.startswith("http://")
            status, body = _scrape(server.url + "/metrics")
            assert status == 200
            assert "queue_tasks_total 5" in body.splitlines()
            assert "queue_depth 2" in body.splitlines()
            status, body = _scrape(server.url + "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok"}
            status, body = _scrape(server.url + "/spans")
            assert status == 200
            assert json.loads(body) == [{"id": "w0:1", "name": "trial"}]

    def test_unhealthy_returns_503(self):
        server = TelemetryServer(health_fn=lambda: {"status": "down"})
        with server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _scrape(server.url + "/healthz")
            # The HTTPError wraps the live response socket; close it.
            with excinfo.value as error:
                assert error.code == 503
                assert json.loads(error.read()) == {"status": "down"}

    def test_unknown_path_is_404(self):
        with TelemetryServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _scrape(server.url + "/nope")
            with excinfo.value as error:
                assert error.code == 404

    def test_stop_idempotent_and_restartable(self):
        server = TelemetryServer().start()
        port = server.port
        server.stop()
        server.stop()  # idempotent
        assert server.port == 0 and server.url == ""
        with server:  # a stopped server can serve again
            assert server.port > 0
        assert port > 0


class TestQueueLivenessSnapshot:
    def _layout(self, root, tasks=(), results=(), leases=()):
        for name in ("tasks", "results", "leases"):
            (root / name).mkdir(parents=True, exist_ok=True)
        for task in tasks:
            (root / "tasks" / f"{task}.json").write_text("{}")
        for result in results:
            (root / "results" / f"{result}.json").write_text("{}")
        for lease in leases:
            (root / "leases" / f"{lease}.lease").write_text("{}")

    def test_counts_and_depth(self, tmp_path):
        self._layout(
            tmp_path,
            tasks=("000001", "000002", "000003"),
            results=("000001",),
            leases=("000002",),
        )
        snapshot = queue_liveness_snapshot(tmp_path, requeues=1, steals=2)
        assert snapshot["counters"] == {
            "queue_tasks_total": 3,
            "queue_results_total": 1,
            "queue_requeues_total": 1,
            "queue_steals_total": 2,
        }
        assert snapshot["gauges"]["queue_depth"] == 2
        assert snapshot["gauges"]["queue_inflight_leases"] == 1
        assert snapshot["gauges"]["queue_heartbeat_age_seconds_max"] >= 0.0

    def test_heartbeat_age_uses_now(self, tmp_path):
        self._layout(tmp_path, leases=("000001",))
        mtime = (tmp_path / "leases" / "000001.lease").stat().st_mtime
        snapshot = queue_liveness_snapshot(tmp_path, now=mtime + 7.5)
        age = snapshot["gauges"]["queue_heartbeat_age_seconds_max"]
        assert age == pytest.approx(7.5, abs=0.01)

    def test_empty_run_dir_is_all_zero(self, tmp_path):
        snapshot = queue_liveness_snapshot(tmp_path)
        assert snapshot["gauges"]["queue_depth"] == 0
        assert snapshot["gauges"]["queue_heartbeat_age_seconds_max"] == 0.0

    def test_snapshot_merges_with_max_rule(self, tmp_path):
        from repro.obs import merge_snapshots

        self._layout(tmp_path, leases=("000001",))
        mtime = (tmp_path / "leases" / "000001.lease").stat().st_mtime
        young = queue_liveness_snapshot(tmp_path, now=mtime + 1.0)
        old = queue_liveness_snapshot(tmp_path, now=mtime + 9.0)
        merged = merge_snapshots([young, old])
        # _max gauges keep the worst heartbeat age instead of summing.
        assert merged["gauges"]["queue_heartbeat_age_seconds_max"] == (
            old["gauges"]["queue_heartbeat_age_seconds_max"]
        )


class TestSpanEventLines:
    def _telemetry(self):
        context = TraceContext(trace_id="feed4", parent_span_id="coord:3")
        obs = Observability(namespace="test-lines", trace_context=context)
        with obs.span("trial", seed=7):
            with obs.span("phase:build"):
                pass
        return obs.telemetry()

    def test_lines_are_stitchable_records(self):
        lines = span_event_lines(self._telemetry(), trial="seed=7")
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        for record in records:
            assert record["kind"] == "span"
            assert record["trial"] == "seed=7"
            assert record["process"] == "test-lines"
            assert record["t0_epoch_s"] > 0
            assert record["dur_s"] >= 0
        root = next(r for r in records if r["parent"] == 0)
        assert root["trace_id"] == "feed4"
        assert root["remote_parent"] == "coord:3"
        child = next(r for r in records if r["parent"] != 0)
        assert "remote_parent" not in child

    def test_epoch_anchor_applied(self):
        telemetry = self._telemetry()
        lines = span_event_lines(telemetry, trial="t")
        for line in lines:
            record = json.loads(line)
            assert record["t0_epoch_s"] >= telemetry["wall0_epoch"]

    def test_append_event_lines(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"
        append_event_lines(path, ['{"kind": "span"}'])
        append_event_lines(path, [])  # no-op, no trailing garbage
        append_event_lines(path, ['{"kind": "span"}'])
        assert path.read_text().splitlines() == ['{"kind": "span"}'] * 2
