"""Exporters: Prometheus text, Chrome trace JSON, JSONL event log.

Every exported artifact must also satisfy ``tools/check_telemetry.py``
(the stdlib validator CI runs), so the last test drives the real files
through the real checker via subprocess.
"""

import json
import pathlib
import subprocess
import sys

from repro.obs import (
    MetricsRegistry,
    Observability,
    chrome_trace,
    events_jsonl_lines,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)
from repro.sim.trace import TraceRecorder

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_telemetry.py"


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("alerts_total", accepted="true").inc(3)
    registry.counter("alerts_total", accepted="false").inc(1)
    registry.gauge("pending").set(2.5)
    histogram = registry.histogram("rtt_cycles", buckets=(10.0, 20.0))
    for value in (5.0, 15.0, 99.0):
        histogram.observe(value)
    return registry


def _sample_trial(key="trial:seed0", index=0):
    trace = TraceRecorder(enabled=True)
    clock = {"now": 0.0}
    obs = Observability(trace=trace, sim_clock=lambda: clock["now"])
    with obs.span("trial", seed=0):
        with obs.span("phase:build"):
            clock["now"] = 10.0
        with obs.span("phase:detection"):
            clock["now"] = 30.0
    payload = obs.telemetry()
    payload["events"] = [event.to_dict() for event in trace]
    return {"key": key, "index": index, **payload}


class TestPrometheusText:
    def test_type_lines_and_samples(self):
        text = prometheus_text(_sample_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE alerts_total counter" in lines
        assert 'alerts_total{accepted="true"} 3' in lines
        assert "# TYPE pending gauge" in lines
        assert "pending 2.5" in lines

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(_sample_registry().snapshot())
        lines = text.splitlines()
        assert 'rtt_cycles_bucket{le="10"} 1' in lines
        assert 'rtt_cycles_bucket{le="20"} 2' in lines
        assert 'rtt_cycles_bucket{le="+Inf"} 3' in lines
        assert "rtt_cycles_count 3" in lines
        assert "rtt_cycles_sum 119.0" in lines

    def test_type_line_emitted_once_per_name(self):
        text = prometheus_text(_sample_registry().snapshot())
        assert text.count("# TYPE alerts_total counter") == 1


class TestChromeTrace:
    def test_events_and_metadata(self):
        data = chrome_trace([_sample_trial()])
        events = data["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert metadata[0]["args"]["name"] == "trial:seed0"
        assert metadata[0]["pid"] == 1
        assert {e["name"] for e in complete} == {
            "trial",
            "phase:build",
            "phase:detection",
        }
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_concurrent_root_spans_get_own_lanes(self):
        # Two runner task spans that overlap in wall time (2 workers)
        # must land on different tids — Chrome lanes require nesting.
        runner_trial = {
            "key": "runner",
            "index": -1,
            "spans": [
                {
                    "name": "task:a",
                    "id": 1,
                    "parent": 0,
                    "depth": 0,
                    "t0_wall_s": 0.0,
                    "dur_wall_s": 2.0,
                    "t0_sim": 0.0,
                    "t1_sim": 0.0,
                    "attrs": {},
                },
                {
                    "name": "task:b",
                    "id": 2,
                    "parent": 0,
                    "depth": 0,
                    "t0_wall_s": 1.0,
                    "dur_wall_s": 2.0,
                    "t0_sim": 0.0,
                    "t1_sim": 0.0,
                    "attrs": {},
                },
            ],
        }
        data = chrome_trace([runner_trial])
        tids = [e["tid"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(set(tids)) == 2

    def test_nested_spans_share_their_root_lane(self):
        data = chrome_trace([_sample_trial()])
        tids = {e["tid"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 1  # one trial root -> one lane

    def test_sim_times_in_args(self):
        data = chrome_trace([_sample_trial()])
        by_name = {
            e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["phase:build"]["args"]["sim_t0"] == 0.0
        assert by_name["phase:build"]["args"]["sim_t1"] == 10.0
        assert by_name["trial"]["args"]["sim_t1"] == 30.0


class TestEventsJsonl:
    def test_one_json_object_per_line(self):
        lines = list(events_jsonl_lines([_sample_trial()]))
        assert len(lines) == 6  # three spans x begin+end
        for line in lines:
            event = json.loads(line)
            assert event["trial"] == "trial:seed0"
            assert "kind" in event and "time" in event


class TestCheckerIntegration:
    def test_exported_files_pass_check_telemetry(self, tmp_path):
        trials = [_sample_trial("trial:seed0", 0), _sample_trial("trial:seed1", 1)]
        prom = write_prometheus(
            tmp_path / "metrics.prom", _sample_registry().snapshot()
        )
        chrome = write_chrome_trace(tmp_path / "trace.json", trials)
        jsonl = write_events_jsonl(tmp_path / "trace.jsonl", trials)
        result = subprocess.run(
            [
                sys.executable,
                str(CHECKER),
                "--chrome",
                str(chrome),
                "--jsonl",
                str(jsonl),
                "--prom",
                str(prom),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr + result.stdout

    def test_checker_rejects_defects(self, tmp_path):
        bad_prom = tmp_path / "bad.prom"
        bad_prom.write_text("# TYPE x counter\nx -3\n")
        result = subprocess.run(
            [sys.executable, str(CHECKER), "--prom", str(bad_prom)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "negative counter" in result.stderr
