"""MetricsRegistry: instruments, snapshots, and order-insensitive merge.

The merge contract is the load-bearing one: worker registries reduced in
*any* order must equal the serial registry bit-for-bit, or parallel runs
would stop being reproducible. The property tests below exercise
commutativity, associativity, and serial equality over seeded random
workloads.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series_key,
    linear_buckets,
    exponential_buckets,
    merge_snapshots,
)


class TestSeriesKeys:
    def test_no_labels(self):
        assert format_series_key("events_total", {}) == "events_total"

    def test_labels_sorted(self):
        key = format_series_key("rtt", {"node": "n1", "kind": "exchange"})
        assert key == 'rtt{kind="exchange",node="n1"}'

    def test_label_values_escaped(self):
        key = format_series_key("x", {"path": 'a\\b"c\nd'})
        assert key == 'x{path="a\\\\b\\"c\\nd"}'

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad name")

    def test_label_named_name_allowed(self):
        # `name` is positional-only on the instrument factories precisely
        # so a label may be called `name`.
        registry = MetricsRegistry()
        registry.counter("profile_count", name="deliveries").inc(3)
        assert registry.snapshot()["counters"] == {
            'profile_count{name="deliveries"}': 3
        }


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_counter_int_stays_int(self):
        counter = Counter()
        counter.inc(2)
        assert isinstance(counter.value, int)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(1.5)
        gauge.inc(-0.5)
        assert gauge.value == 1.0

    def test_histogram_buckets(self):
        histogram = Histogram(bounds=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 1.6, 2.5, 99.0):
            histogram.observe(value)
        data = histogram.to_dict()
        assert data["counts"] == [1, 2, 1, 1]  # last slot = +Inf overflow
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(0.5 + 1.5 + 1.6 + 2.5 + 99.0)

    def test_histogram_same_handle_for_same_series(self):
        registry = MetricsRegistry()
        first = registry.histogram("rtt", buckets=(1.0, 2.0))
        again = registry.histogram("rtt")
        assert first is again

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("rtt", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("rtt", buckets=(1.0, 3.0))

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_bucket_helpers(self):
        assert linear_buckets(0.0, 10.0, 3) == (0.0, 10.0, 20.0)
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)


def _random_registry(rng):
    """A registry filled with a random-but-seeded workload."""
    registry = MetricsRegistry()
    for _ in range(rng.randrange(1, 30)):
        which = rng.randrange(3)
        node = f"n{rng.randrange(4)}"
        # Dyadic values keep every float sum exact, so nested merges
        # (associativity) compare bit-for-bit.
        if which == 0:
            registry.counter("events_total", node=node).inc(rng.randrange(5))
        elif which == 1:
            registry.gauge("pending", node=node).inc(rng.randrange(-8, 9) * 0.25)
        else:
            registry.histogram(
                "rtt", buckets=(10.0, 20.0, 30.0), node=node
            ).observe(rng.randrange(0, 160) * 0.25)
    return registry


class TestMergeProperties:
    """merge(any permutation of worker snapshots) == serial, exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_merge_equals_serial(self, seed):
        rng = random.Random(seed)
        workloads = [
            [
                (rng.randrange(3), f"n{rng.randrange(3)}", rng.randrange(1, 5))
                for _ in range(rng.randrange(1, 25))
            ]
            for _ in range(rng.randrange(2, 6))
        ]

        def apply(registry, workload):
            for which, node, amount in workload:
                if which == 0:
                    registry.counter("events_total", node=node).inc(amount)
                elif which == 1:
                    registry.gauge("pending", node=node).inc(amount * 0.25)
                else:
                    # Dyadic values: incremental float addition is then
                    # exact, so the single-registry serial run matches
                    # the fsum-based merge bit-for-bit.
                    registry.histogram(
                        "rtt", buckets=(1.0, 2.0, 4.0), node=node
                    ).observe(amount * 0.5)

        serial = MetricsRegistry()
        for workload in workloads:
            apply(serial, workload)

        workers = []
        for workload in workloads:
            worker = MetricsRegistry()
            apply(worker, workload)
            workers.append(worker.snapshot())

        expected = serial.snapshot()
        for trial in range(6):
            shuffled = list(workers)
            random.Random(100 + trial).shuffle(shuffled)
            assert merge_snapshots(shuffled) == expected

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_merge_commutative(self, seed):
        rng = random.Random(seed)
        a = _random_registry(rng).snapshot()
        b = _random_registry(rng).snapshot()
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_merge_associative(self, seed):
        rng = random.Random(seed)
        a = _random_registry(rng).snapshot()
        b = _random_registry(rng).snapshot()
        c = _random_registry(rng).snapshot()
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    def test_merge_idempotent_on_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_int_counters_stay_int(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        merged = merge_snapshots([registry.snapshot()] * 3)
        assert merged["counters"]["x"] == 9
        assert isinstance(merged["counters"]["x"], int)

    def test_max_suffix_gauges_merge_by_max(self):
        # Liveness gauges like queue_heartbeat_age_seconds_max answer
        # "how bad is the worst one" — summing scrapes would fabricate a
        # staleness no process observed.
        snapshots = []
        for age in (1.5, 9.0, 4.0):
            registry = MetricsRegistry()
            registry.gauge("queue_heartbeat_age_seconds_max").set(age)
            registry.gauge("pending").set(age)
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots)
        assert merged["gauges"]["queue_heartbeat_age_seconds_max"] == 9.0
        assert merged["gauges"]["pending"] == 14.5  # plain gauges still sum

    def test_max_suffix_applies_to_base_name_not_labels(self):
        a = MetricsRegistry()
        a.gauge("lag_max", node="n1").set(3.0)
        b = MetricsRegistry()
        b.gauge("lag_max", node="n1").set(8.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]['lag_max{node="n1"}'] == 8.0

    @pytest.mark.parametrize("seed", [30, 31, 32])
    def test_max_gauges_keep_merge_order_insensitive(self, seed):
        rng = random.Random(seed)
        snapshots = []
        for _ in range(4):
            registry = MetricsRegistry()
            registry.gauge(
                "queue_heartbeat_age_seconds_max",
                node=f"n{rng.randrange(2)}",
            ).set(rng.randrange(0, 40) * 0.25)
            registry.gauge("pending").inc(rng.randrange(-8, 9) * 0.25)
            snapshots.append(registry.snapshot())
        expected = merge_snapshots(snapshots)
        for trial in range(6):
            shuffled = list(snapshots)
            random.Random(200 + trial).shuffle(shuffled)
            assert merge_snapshots(shuffled) == expected
        # max is also idempotent: re-merging a merge changes no _max gauge.
        remerged = merge_snapshots([expected, expected])["gauges"]
        for key, value in expected["gauges"].items():
            if key.split("{", 1)[0].endswith("_max"):
                assert remerged[key] == value

    def test_merge_rejects_bucket_layout_mismatch(self):
        a = MetricsRegistry()
        a.histogram("rtt", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("rtt", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["histograms"]["h"]["buckets"] == [1.0]
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]

    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", node="n1").inc(2)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        assert round_tripped == registry.snapshot()

    def test_clear_name(self):
        registry = MetricsRegistry()
        registry.gauge("g", phase="a").set(1.0)
        registry.gauge("g", phase="b").set(2.0)
        registry.counter("keep").inc()
        registry.clear_name("g")
        snapshot = registry.snapshot()
        assert snapshot["gauges"] == {}
        assert snapshot["counters"] == {"keep": 1}
