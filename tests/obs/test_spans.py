"""Hierarchical spans: nesting, timing, trace events, exception tagging."""

import pytest

from repro.obs import (
    Observability,
    ObserveConfig,
    SPAN_BEGIN,
    SPAN_END,
    active_span_of,
    tag_active_span,
)
from repro.sim.trace import TraceRecorder


class TestSpanNesting:
    def test_parent_child_links(self):
        obs = Observability()
        with obs.span("trial"):
            with obs.span("phase:build"):
                pass
            with obs.span("phase:detection"):
                pass
        names = [span["name"] for span in obs.spans]
        # Children close before the parent, so they are recorded first.
        assert names == ["phase:build", "phase:detection", "trial"]
        trial = obs.spans[-1]
        for child in obs.spans[:-1]:
            assert child["parent"] == trial["id"]
            assert child["depth"] == 1
        assert trial["parent"] == 0
        assert trial["depth"] == 0

    def test_current_span_tracks_stack(self):
        obs = Observability()
        assert obs.current_span is None
        with obs.span("outer"):
            assert obs.current_span == "outer"
            with obs.span("inner"):
                assert obs.current_span == "inner"
                assert obs.depth == 2
            assert obs.current_span == "outer"
        assert obs.current_span is None

    def test_attrs_recorded(self):
        obs = Observability()
        with obs.span("trial", seed=7):
            pass
        assert obs.spans[0]["attrs"] == {"seed": 7}


class TestSpanTiming:
    def test_sim_clock_sampled_at_entry_and_exit(self):
        clock = {"now": 0.0}
        obs = Observability(sim_clock=lambda: clock["now"])
        with obs.span("phase:detection"):
            clock["now"] = 42.0
        span = obs.spans[0]
        assert span["t0_sim"] == 0.0
        assert span["t1_sim"] == 42.0

    def test_wall_times_nonnegative_and_nested(self):
        obs = Observability()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.spans
        assert inner["t0_wall_s"] >= outer["t0_wall_s"]
        assert inner["dur_wall_s"] >= 0.0
        assert outer["dur_wall_s"] >= inner["dur_wall_s"]


class TestSpanTraceEvents:
    def test_begin_end_markers_recorded(self):
        trace = TraceRecorder(enabled=True)
        obs = Observability(trace=trace)
        with obs.span("trial"):
            with obs.span("phase:build"):
                pass
        kinds = [event.kind for event in trace]
        assert kinds == [SPAN_BEGIN, SPAN_BEGIN, SPAN_END, SPAN_END]
        begin = list(trace)[0]
        assert begin.fields["span"] == "trial"
        assert begin.fields["depth"] == 0

    def test_disabled_trace_records_nothing(self):
        obs = Observability()  # default recorder is disabled
        with obs.span("trial"):
            pass
        assert obs.spans  # spans still collected in memory


class TestExceptionTagging:
    def test_innermost_open_span_wins(self):
        obs = Observability()
        with pytest.raises(RuntimeError) as excinfo:
            with obs.span("trial"):
                with obs.span("phase:detection"):
                    raise RuntimeError("boom")
        assert active_span_of(excinfo.value) == "phase:detection"

    def test_first_tagger_wins(self):
        error = RuntimeError("x")
        tag_active_span(error, "inner")
        tag_active_span(error, "outer")
        assert active_span_of(error) == "inner"

    def test_untagged_exception_reads_empty(self):
        assert active_span_of(RuntimeError("x")) == ""

    def test_span_closes_on_exception(self):
        obs = Observability()
        with pytest.raises(ValueError):
            with obs.span("trial"):
                raise ValueError("x")
        assert len(obs.spans) == 1
        assert obs.current_span is None


class TestTelemetryPayload:
    def test_registry_and_spans(self):
        obs = Observability(config=ObserveConfig())
        obs.registry.counter("probes_sent_total").inc(3)
        with obs.span("trial"):
            pass
        payload = obs.telemetry()
        assert payload["registry"]["counters"] == {"probes_sent_total": 3}
        assert payload["spans"][0]["name"] == "trial"
