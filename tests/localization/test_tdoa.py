"""Tests for the TDoA (ultrasound) ranging model and its §2.3 caveat."""

import pytest

from repro.errors import ConfigurationError
from repro.localization.measurement import RssiModel, TdoaModel, ToaModel


class TestTdoaModel:
    def test_gap_roundtrip(self):
        m = TdoaModel()
        for d in (1.0, 50.0, 150.0):
            assert m.distance_from_gap(m.arrival_gap_s(d)) == pytest.approx(d)

    def test_error_bounded(self, rng):
        m = TdoaModel(max_error_ft=2.0)
        for _ in range(200):
            d = rng.uniform(0, 150)
            assert abs(m.measure_distance(d, rng) - d) <= 2.0 + 1e-9

    def test_more_precise_than_rssi(self):
        assert TdoaModel().max_error_ft < RssiModel().max_error_ft

    def test_external_bias_hook(self, rng):
        # The §2.3 caveat: an external attacker advances the ultrasound
        # pulse, shrinking the measured distance of a benign beacon.
        m = TdoaModel(max_error_ft=0.0)
        honest = m.measure_distance(100.0, rng)
        attacked = m.measure_distance(100.0, rng, bias_ft=-40.0)
        assert honest == pytest.approx(100.0)
        assert attacked == pytest.approx(60.0)

    def test_unprotected_flag(self):
        assert TdoaModel().protects_ranging_feature is False
        assert RssiModel().protects_ranging_feature is True
        assert ToaModel().protects_ranging_feature is True

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            TdoaModel().arrival_gap_s(-1.0)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            TdoaModel(max_error_ft=-1.0)
        with pytest.raises(ConfigurationError):
            TdoaModel(sound_speed_ft_per_s=0.0)

    def test_never_negative(self, rng):
        m = TdoaModel(max_error_ft=0.0)
        assert m.measure_distance(10.0, rng, bias_ft=-100.0) == 0.0
