"""Tests for MMSE multilateration."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientReferencesError
from repro.localization.multilateration import (
    MIN_REFERENCES,
    location_error_ft,
    mmse_multilaterate,
)
from repro.localization.references import LocationReference
from repro.utils.geometry import Point, distance


def refs_from(truth, anchors, *, noise=None, rng=None):
    out = []
    for i, a in enumerate(anchors):
        d = distance(truth, a)
        if noise is not None:
            d += rng.uniform(-noise, noise)
        out.append(
            LocationReference(
                beacon_id=i + 1, beacon_location=a, measured_distance_ft=max(0.0, d)
            )
        )
    return out


SQUARE = [Point(0, 0), Point(100, 0), Point(0, 100), Point(100, 100)]


class TestExactSolve:
    def test_noise_free_recovery(self):
        truth = Point(37.0, 61.0)
        result = mmse_multilaterate(refs_from(truth, SQUARE))
        assert distance(result.position, truth) < 1e-6
        assert result.rms_residual_ft < 1e-6

    def test_three_references_suffice(self):
        truth = Point(20.0, 30.0)
        result = mmse_multilaterate(refs_from(truth, SQUARE[:3]))
        assert distance(result.position, truth) < 1e-6

    def test_too_few_references(self):
        truth = Point(20.0, 30.0)
        with pytest.raises(InsufficientReferencesError):
            mmse_multilaterate(refs_from(truth, SQUARE[:2]))

    def test_collinear_anchors_rejected(self):
        line = [Point(0, 0), Point(50, 0), Point(100, 0)]
        with pytest.raises(InsufficientReferencesError):
            mmse_multilaterate(refs_from(Point(10, 10), line))

    def test_min_references_constant(self):
        assert MIN_REFERENCES == 3


class TestNoisySolve:
    def test_error_commensurate_with_noise(self):
        rng = random.Random(4)
        truth = Point(42.0, 58.0)
        errors = []
        for _ in range(30):
            refs = refs_from(truth, SQUARE, noise=10.0, rng=rng)
            result = mmse_multilaterate(refs)
            errors.append(distance(result.position, truth))
        assert sum(errors) / len(errors) < 12.0

    def test_more_anchors_reduce_error(self):
        rng1 = random.Random(9)
        rng2 = random.Random(9)
        truth = Point(500.0, 500.0)
        ring = [
            Point(500 + 300 * math.cos(t), 500 + 300 * math.sin(t))
            for t in [i * math.pi / 6 for i in range(12)]
        ]
        few = [
            distance(
                mmse_multilaterate(refs_from(truth, ring[:3], noise=10, rng=rng1)).position,
                truth,
            )
            for _ in range(25)
        ]
        many = [
            distance(
                mmse_multilaterate(refs_from(truth, ring, noise=10, rng=rng2)).position,
                truth,
            )
            for _ in range(25)
        ]
        assert sum(many) / len(many) < sum(few) / len(few)

    def test_rms_residual_flags_lying_beacon(self):
        truth = Point(50.0, 50.0)
        refs = refs_from(truth, SQUARE)
        honest = mmse_multilaterate(refs).rms_residual_ft
        # Replace one reference with a location lie that is geometrically
        # inconsistent with the measured range (not on the same circle).
        lied = list(refs)
        lied[0] = LocationReference(
            beacon_id=1,
            beacon_location=Point(300, 0),
            measured_distance_ft=refs[0].measured_distance_ft,
        )
        assert mmse_multilaterate(lied).rms_residual_ft > honest + 5.0

    @given(
        st.floats(min_value=5, max_value=95),
        st.floats(min_value=5, max_value=95),
    )
    @settings(max_examples=40)
    def test_recovery_property(self, x, y):
        truth = Point(x, y)
        result = mmse_multilaterate(refs_from(truth, SQUARE))
        assert distance(result.position, truth) < 1e-4


class TestHelpers:
    def test_location_error(self):
        assert location_error_ft(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_result_reports_iterations(self):
        result = mmse_multilaterate(refs_from(Point(10, 10), SQUARE))
        assert result.iterations >= 1
