"""Tests for ranging measurement models."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.localization.measurement import AoaModel, RssiModel, ToaModel
from repro.utils.geometry import Point


class TestRssiChannel:
    def test_rssi_decreases_with_distance(self):
        m = RssiModel()
        assert m.rssi_at(10.0) > m.rssi_at(100.0)

    def test_inversion_roundtrip(self):
        m = RssiModel()
        for d in (5.0, 50.0, 300.0):
            rssi = m.rssi_at(d)
            assert m.distance_from_rssi(rssi) == pytest.approx(d, rel=1e-9)

    def test_below_reference_distance_clamped(self):
        m = RssiModel(reference_distance_ft=3.0)
        assert m.rssi_at(1.0) == m.rssi_at(3.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            RssiModel().rssi_at(-1.0)

    def test_power_games_shift_estimate(self):
        # An attacker lowering transmit power makes the victim (assuming
        # nominal power) over-estimate the distance: the RSSI attack hook.
        m = RssiModel()
        rssi_low_power = m.rssi_at(50.0, tx_power_dbm=-10.0)
        inferred = m.distance_from_rssi(rssi_low_power)
        assert inferred > 50.0


class TestRssiMeasurement:
    def test_error_bounded(self, rng):
        m = RssiModel(max_error_ft=10.0)
        for _ in range(200):
            d = rng.uniform(0, 150)
            est = m.measure_distance(d, rng)
            assert abs(est - d) <= 10.0 + 1e-9

    def test_bias_not_clamped(self, rng):
        m = RssiModel(max_error_ft=10.0)
        est = m.measure_distance(100.0, rng, bias_ft=80.0)
        assert est > 150.0

    def test_never_negative(self, rng):
        m = RssiModel(max_error_ft=10.0)
        assert m.measure_distance(0.0, rng, bias_ft=-100.0) == 0.0

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RssiModel(max_error_ft=-1.0)
        with pytest.raises(ConfigurationError):
            RssiModel(path_loss_exponent=0.0)

    @given(st.floats(min_value=0, max_value=1000), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_bounded_error_property(self, d, seed):
        m = RssiModel(max_error_ft=10.0)
        est = m.measure_distance(d, random.Random(seed))
        assert abs(est - d) <= 10.0 + 1e-9


class TestToa:
    def test_max_error_derived(self):
        m = ToaModel(timing_jitter_cycles=0.1, signal_speed_ft_per_cycle=100.0)
        assert m.max_error_ft == pytest.approx(10.0)

    def test_error_within_bound(self, rng):
        m = ToaModel()
        for _ in range(100):
            d = rng.uniform(0, 150)
            assert abs(m.measure_distance(d, rng) - d) <= m.max_error_ft + 1e-9

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            ToaModel(timing_jitter_cycles=-1.0)


class TestAoa:
    def test_bearing_range(self, rng):
        m = AoaModel()
        for _ in range(100):
            b = m.measure_bearing(Point(0, 0), Point(1, 1), rng)
            assert -math.pi < b <= math.pi

    def test_bearing_accuracy(self, rng):
        m = AoaModel(max_error_rad=math.radians(5))
        true_bearing = math.atan2(1, 1)
        for _ in range(50):
            b = m.measure_bearing(Point(0, 0), Point(1, 1), rng)
            assert abs(b - true_bearing) <= math.radians(5) + 1e-9

    def test_bias_applied(self, rng):
        m = AoaModel(max_error_rad=0.0)
        b = m.measure_bearing(Point(0, 0), Point(1, 0), rng, bias_rad=0.3)
        assert b == pytest.approx(0.3)

    def test_negative_error_rejected(self):
        with pytest.raises(ConfigurationError):
            AoaModel(max_error_rad=-0.1)
