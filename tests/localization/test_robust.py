"""Tests for attack-resistant multilateration."""

import math
import random

import pytest

from repro.errors import InsufficientReferencesError
from repro.localization.multilateration import mmse_multilaterate
from repro.localization.references import LocationReference
from repro.localization.robust import (
    consistency_vote,
    residual_tolerance_ft,
    robust_multilaterate,
)
from repro.utils.geometry import Point, distance


def honest_refs(truth, anchors, rng=None, noise=0.0, start_id=1):
    refs = []
    for i, a in enumerate(anchors):
        d = distance(truth, a)
        if rng is not None:
            d += rng.uniform(-noise, noise)
        refs.append(
            LocationReference(
                beacon_id=start_id + i,
                beacon_location=a,
                measured_distance_ft=max(0.0, d),
            )
        )
    return refs


def lying_ref(truth, physical, lie, beacon_id=99):
    """A beacon physically at ``physical`` declaring ``lie``."""
    return LocationReference(
        beacon_id=beacon_id,
        beacon_location=lie,
        measured_distance_ft=distance(truth, physical),
    )


RING = [
    Point(200 + 150 * math.cos(t), 200 + 150 * math.sin(t))
    for t in [i * 2 * math.pi / 6 for i in range(6)]
]
TRUTH = Point(200.0, 200.0)


class TestTolerance:
    def test_formula(self):
        assert residual_tolerance_ft(10.0) == 15.0
        assert residual_tolerance_ft(10.0, slack=2.0) == 20.0

    def test_negative_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            residual_tolerance_ft(-1.0)


class TestRobustSolve:
    def test_all_honest_accepts_everything(self):
        rng = random.Random(1)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        result = robust_multilaterate(refs, max_error_ft=10.0)
        assert result.rejected == []
        assert distance(result.position, TRUTH) < 15.0

    def test_single_liar_rejected(self):
        rng = random.Random(2)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        liar = lying_ref(TRUTH, RING[0], Point(500, 500))
        result = robust_multilaterate(refs + [liar], max_error_ft=10.0)
        assert liar in result.rejected
        assert distance(result.position, TRUTH) < 15.0

    def test_two_liars_rejected(self):
        rng = random.Random(3)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        liars = [
            lying_ref(TRUTH, RING[0], Point(500, 500), beacon_id=98),
            lying_ref(TRUTH, RING[1], Point(-100, 500), beacon_id=99),
        ]
        result = robust_multilaterate(refs + liars, max_error_ft=10.0)
        assert set(map(id, liars)) <= set(map(id, result.rejected))
        assert distance(result.position, TRUTH) < 15.0

    def test_plain_mmse_corrupted_by_same_liar(self):
        rng = random.Random(2)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        liar = lying_ref(TRUTH, RING[0], Point(500, 500))
        plain = mmse_multilaterate(refs + [liar])
        robust = robust_multilaterate(refs + [liar], max_error_ft=10.0)
        assert distance(plain.position, TRUTH) > distance(
            robust.position, TRUTH
        )

    def test_all_inconsistent_raises(self):
        # Three mutually inconsistent references: no honest subset.
        refs = [
            LocationReference(1, Point(0, 0), 500.0),
            LocationReference(2, Point(10, 0), 1.0),
            LocationReference(3, Point(0, 10), 200.0),
        ]
        with pytest.raises(InsufficientReferencesError):
            robust_multilaterate(refs, max_error_ft=5.0)

    def test_too_few_references(self):
        refs = honest_refs(TRUTH, RING[:2])
        with pytest.raises(InsufficientReferencesError):
            robust_multilaterate(refs, max_error_ft=10.0)

    def test_rounds_reported(self):
        rng = random.Random(4)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        liar = lying_ref(TRUTH, RING[0], Point(600, -100))
        result = robust_multilaterate(refs + [liar], max_error_ft=10.0)
        assert result.rounds >= 2  # at least one peel iteration

    def test_majority_liars_mislead(self):
        """The documented limit: with liars outnumbering honest anchors
        *and colluding on one consistent story*, the robust solver locks
        onto the liars' story instead."""
        fake = Point(350.0, 60.0)
        # Four colluding liars whose (declared, measured) pairs are
        # perfectly consistent with position `fake`...
        liars = [
            LocationReference(
                90 + i,
                decl,
                measured_distance_ft=distance(fake, decl),
            )
            for i, decl in enumerate(
                [Point(300, 0), Point(400, 0), Point(300, 120), Point(420, 120)]
            )
        ]
        # ...against three honest anchors for the true position.
        honest = honest_refs(TRUTH, RING[:3])
        result = robust_multilaterate(honest + liars, max_error_ft=10.0)
        assert distance(result.position, fake) < distance(
            result.position, TRUTH
        )


class TestConsistencyVote:
    def test_labels(self):
        rng = random.Random(5)
        refs = honest_refs(TRUTH, RING, rng, noise=10.0)
        liar = lying_ref(TRUTH, RING[0], Point(500, 500))
        votes = dict(
            (ref.beacon_id, ok)
            for ref, ok in consistency_vote(refs + [liar], max_error_ft=10.0)
        )
        assert votes[99] is False
        assert all(votes[r.beacon_id] for r in refs)
