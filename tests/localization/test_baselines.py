"""Tests for the cited localization baselines: centroid, DV-Hop, AHLoS."""

import random
import statistics

import pytest

from repro.errors import InsufficientReferencesError, LocalizationError
from repro.localization.atomic import iterative_multilateration
from repro.localization.centroid import centroid_localize
from repro.localization.dvhop import DvHopLocalizer
from repro.localization.references import LocationReference
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def ref(beacon_id, loc, dist=0.0):
    return LocationReference(
        beacon_id=beacon_id, beacon_location=loc, measured_distance_ft=dist
    )


class TestCentroid:
    def test_center_of_square(self):
        refs = [
            ref(1, Point(0, 0)),
            ref(2, Point(10, 0)),
            ref(3, Point(10, 10)),
            ref(4, Point(0, 10)),
        ]
        assert centroid_localize(refs) == Point(5, 5)

    def test_single_reference(self):
        assert centroid_localize([ref(1, Point(3, 4))]) == Point(3, 4)

    def test_empty_raises(self):
        with pytest.raises(InsufficientReferencesError):
            centroid_localize([])

    def test_lying_beacon_shifts_estimate(self):
        honest = [ref(i, Point(0, 0)) for i in range(1, 4)]
        with_liar = honest + [ref(9, Point(400, 0))]
        assert centroid_localize(with_liar).x == pytest.approx(100.0)


def grid_network(side=10, spacing=80.0, beacon_every=3, seed=2):
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(seed))
    rng = random.Random(seed)
    nid = 0
    for i in range(side):
        for j in range(side):
            nid += 1
            is_beacon = i % beacon_every == 0 and j % beacon_every == 0
            jitter = rng.uniform(-5, 5)
            net.add_node(
                Node(
                    nid,
                    Point(i * spacing + jitter, j * spacing + jitter),
                    is_beacon=is_beacon,
                )
            )
    return net


class TestDvHop:
    def test_localizes_most_nodes(self):
        net = grid_network()
        loc = DvHopLocalizer(net)
        estimates = loc.localize_all()
        assert len(estimates) > 0.8 * len(net.non_beacon_nodes())

    def test_median_error_below_two_hops(self):
        net = grid_network()
        loc = DvHopLocalizer(net)
        estimates = loc.localize_all()
        errors = [net.node(k).position.distance_to(v) for k, v in estimates.items()]
        assert statistics.median(errors) < 160.0  # roughly one radio range

    def test_hop_size_near_spacing(self):
        net = grid_network()
        loc = DvHopLocalizer(net)
        beacon_id = net.beacon_nodes()[0].node_id
        # Grid spacing 80 ft and range 150 ft: 1 hop covers 1-2 cells.
        assert 60.0 < loc.hop_size_of(beacon_id) < 200.0

    def test_declared_location_override(self):
        net = grid_network()
        liar = net.beacon_nodes()[0]
        lie = Point(liar.position.x + 500, liar.position.y)
        honest_loc = DvHopLocalizer(net)
        lying_loc = DvHopLocalizer(net, beacon_locations={liar.node_id: lie})
        victim = net.non_beacon_nodes()[0]
        honest_est = honest_loc.localize(victim)
        lying_est = lying_loc.localize(victim)
        assert honest_est.distance_to(lying_est) > 1.0

    def test_isolated_node_insufficient(self):
        net = grid_network()
        lonely = Node(9999, Point(50_000, 50_000))
        net.add_node(lonely)
        loc = DvHopLocalizer(net)
        with pytest.raises(InsufficientReferencesError):
            loc.localize(lonely)

    def test_disconnected_beacons_raise(self):
        engine = Engine()
        net = Network(engine, rngs=RngRegistry(0))
        net.add_node(Node(1, Point(0, 0), is_beacon=True))
        net.add_node(Node(2, Point(10_000, 0), is_beacon=True))
        with pytest.raises(LocalizationError):
            DvHopLocalizer(net)


def left_anchored_network(side=10, spacing=70.0, seed=2):
    """Beacons only on the left edge: promotion must sweep rightward."""
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(seed))
    rng = random.Random(seed)
    nid = 0
    for i in range(side):
        for j in range(side):
            nid += 1
            is_beacon = i < 2  # two dense beacon columns on the left
            jitter = rng.uniform(-5, 5)
            net.add_node(
                Node(
                    nid,
                    Point(i * spacing + jitter, j * spacing + jitter),
                    is_beacon=is_beacon,
                )
            )
    return net


class TestIterativeMultilateration:
    def test_solves_beyond_direct_beacon_range(self):
        net = left_anchored_network()
        rng = random.Random(3)
        result = iterative_multilateration(net, rng)
        # Iterative promotion reaches nodes a single atomic pass cannot:
        # rightmost columns are several radio ranges from any real beacon.
        assert result.rounds >= 2
        assert len(result.positions) > 0.5 * len(net.non_beacon_nodes())

    def test_positions_reasonably_accurate(self):
        net = grid_network(side=8, spacing=100.0, beacon_every=2)
        rng = random.Random(3)
        result = iterative_multilateration(net, rng)
        errors = [
            net.node(k).position.distance_to(v) for k, v in result.positions.items()
        ]
        assert statistics.median(errors) < 30.0

    def test_residual_gate_reduces_promotions(self):
        net = left_anchored_network()
        free = iterative_multilateration(net, random.Random(5))
        gated = iterative_multilateration(
            net, random.Random(5), residual_gate_ft=1.0
        )
        assert len(gated.positions) <= len(free.positions)

    def test_unsolved_tracked(self):
        net = grid_network(side=4, spacing=100.0, beacon_every=4)
        lonely = Node(7777, Point(90_000, 90_000))
        net.add_node(lonely)
        result = iterative_multilateration(net, random.Random(1))
        assert 7777 in result.unsolved

    def test_error_accumulates_over_rounds(self):
        # The Section 2.3 warning: promoted anchors inject their estimation
        # error into later rounds.
        net = grid_network(side=9, spacing=100.0, beacon_every=8)
        rng = random.Random(11)
        result = iterative_multilateration(net, rng)
        if result.rounds < 2:
            pytest.skip("deployment solved in one round; nothing to compare")
        first = result.promoted[0]
        last = result.promoted[-1]
        err = lambda ids: statistics.mean(  # noqa: E731
            net.node(i).position.distance_to(result.positions[i]) for i in ids
        )
        assert err(last) >= err(first) * 0.5  # later rounds are no magic fix
