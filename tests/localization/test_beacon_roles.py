"""Tests for BeaconService / NonBeaconAgent protocol roles."""

import pytest

from repro.crypto.manager import KeyManager
from repro.errors import InsufficientReferencesError
from repro.localization.beacon import BeaconService, NonBeaconAgent
from repro.localization.references import LocationReference
from repro.sim.engine import Engine
from repro.sim.messages import BeaconRequest, RevocationNotice
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


@pytest.fixture
def deployed():
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(8))
    km = KeyManager()
    beacons = []
    for i, pos in enumerate(
        [Point(0, 0), Point(100, 0), Point(0, 100), Point(100, 100)], start=1
    ):
        km.enroll(i, is_beacon=True)
        beacons.append(net.add_node(BeaconService(i, pos, km)))
    km.enroll(50)
    agent = net.add_node(NonBeaconAgent(50, Point(40, 60), km))
    return engine, net, km, beacons, agent


class TestBeaconService:
    def test_replies_to_valid_request(self, deployed):
        engine, net, km, beacons, agent = deployed
        agent.request_beacon(1)
        engine.run()
        assert beacons[0].requests_served == 1
        assert len(agent.references) == 1
        assert agent.references[0].beacon_id == 1

    def test_ignores_forged_request(self, deployed):
        engine, net, km, beacons, agent = deployed
        forged = BeaconRequest(src_id=50, dst_id=1, nonce=1)
        forged.auth_tag = b"garbage!"
        net.unicast(agent, forged)
        engine.run()
        assert beacons[0].requests_served == 0

    def test_declares_location(self, deployed):
        engine, net, km, beacons, agent = deployed
        agent.request_beacon(2)
        engine.run()
        assert agent.references[0].beacon_location == Point(100, 0)

    def test_sequence_increments(self, deployed):
        engine, net, km, beacons, agent = deployed
        agent.request_beacon(1)
        agent.request_beacon(1)
        engine.run()
        assert beacons[0].requests_served == 2

    def test_custom_declared_location(self):
        km = KeyManager()
        km.enroll(1, is_beacon=True)
        b = BeaconService(1, Point(0, 0), km, declared_location=Point(5, 5))
        assert b.declared_location == Point(5, 5)


class TestNonBeaconAgent:
    def test_estimates_position(self, deployed):
        engine, net, km, beacons, agent = deployed
        for b in beacons:
            agent.request_beacon(b.node_id)
        engine.run()
        result = agent.estimate_position()
        assert agent.location_error_ft() < 15.0
        assert result.position == agent.estimated_position

    def test_insufficient_references(self, deployed):
        engine, net, km, beacons, agent = deployed
        agent.request_beacon(1)
        engine.run()
        with pytest.raises(InsufficientReferencesError):
            agent.estimate_position()

    def test_error_before_estimate_raises(self, deployed):
        _, _, _, _, agent = deployed
        with pytest.raises(InsufficientReferencesError):
            agent.location_error_ft()

    def test_duplicate_beacon_references_deduplicated(self, deployed):
        engine, net, km, beacons, agent = deployed
        for _ in range(3):
            agent.request_beacon(1)
        agent.request_beacon(2)
        engine.run()
        assert len(agent.references) == 4
        with pytest.raises(InsufficientReferencesError):
            # Only two *distinct* beacons.
            agent.estimate_position()

    def test_revocation_notice_discards_references(self, deployed):
        engine, net, km, beacons, agent = deployed
        for b in beacons:
            agent.request_beacon(b.node_id)
        engine.run()
        km.enroll(99, is_beacon=True)  # base-station proxy identity
        notice = km.sign(RevocationNotice(src_id=99, dst_id=50, revoked_id=1))
        net.add_node(BeaconService(99, Point(50, 50), km))
        net.unicast(net.node(99), notice)
        engine.run()
        assert 1 in agent.revoked_beacons
        assert all(r.beacon_id != 1 for r in agent.references)

    def test_ignores_revoked_beacons_future_signals(self, deployed):
        engine, net, km, beacons, agent = deployed
        agent.revoked_beacons.add(1)
        agent.request_beacon(1)
        engine.run()
        assert agent.references == []

    def test_unverifiable_beacon_packet_dropped(self, deployed):
        engine, net, km, beacons, agent = deployed
        from repro.sim.messages import BeaconPacket

        bogus = BeaconPacket(src_id=1, dst_id=50, claimed_location=(1.0, 1.0))
        bogus.auth_tag = b"badbadba"
        net.unicast(beacons[0], bogus)
        engine.run()
        assert agent.references == []


class TestLocationReference:
    def test_residual_at(self):
        ref = LocationReference(
            beacon_id=1,
            beacon_location=Point(0, 0),
            measured_distance_ft=100.0,
        )
        assert ref.residual_at(Point(60, 80)) == pytest.approx(0.0)
        assert ref.residual_at(Point(0, 0)) == pytest.approx(100.0)
