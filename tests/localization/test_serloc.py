"""Tests for the SeRLoc range-free baseline."""

import math
import random

import pytest

from repro.errors import ConfigurationError, InsufficientReferencesError
from repro.localization.serloc import (
    Sector,
    SerLocLocator,
    localize_with,
    serloc_localize,
)
from repro.utils.geometry import Point


class TestSector:
    def test_contains_in_wedge(self):
        s = Sector(
            origin=Point(0, 0),
            bearing_rad=0.0,
            width_rad=math.pi / 2,
            range_ft=100.0,
        )
        assert s.contains(Point(50, 0))
        assert s.contains(Point(50, 20))
        assert not s.contains(Point(-50, 0))  # behind
        assert not s.contains(Point(0, 50))  # outside the wedge
        assert not s.contains(Point(150, 0))  # beyond range

    def test_full_circle_sector(self):
        s = Sector(
            origin=Point(0, 0),
            bearing_rad=0.0,
            width_rad=2 * math.pi,
            range_ft=100.0,
        )
        assert s.contains(Point(-50, -50))

    def test_wraparound_bearing(self):
        s = Sector(
            origin=Point(0, 0),
            bearing_rad=math.pi,  # pointing west
            width_rad=math.pi / 2,
            range_ft=100.0,
        )
        assert s.contains(Point(-50, 1))
        assert s.contains(Point(-50, -1))

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            Sector(Point(0, 0), 0.0, 0.0, 100.0)
        with pytest.raises(ConfigurationError):
            Sector(Point(0, 0), 0.0, 1.0, 0.0)


class TestLocator:
    def test_sector_index_partitions_circle(self):
        locator = SerLocLocator(1, Point(0, 0), n_sectors=4)
        assert locator.sector_index_for(Point(10, 1)) == 0
        assert locator.sector_index_for(Point(-1, 10)) == 1
        assert locator.sector_index_for(Point(-10, -1)) == 2
        assert locator.sector_index_for(Point(1, -10)) == 3

    def test_heard_sector_contains_receiver(self):
        rng = random.Random(0)
        locator = SerLocLocator(1, Point(100, 100), n_sectors=8)
        for _ in range(50):
            receiver = Point(rng.uniform(0, 200), rng.uniform(0, 200))
            sector = locator.heard_sector(receiver)
            if sector is not None:
                assert sector.contains(receiver)

    def test_out_of_range_hears_nothing(self):
        locator = SerLocLocator(1, Point(0, 0), range_ft=100.0)
        assert locator.heard_sector(Point(500, 0)) is None

    def test_invalid_sector_count(self):
        with pytest.raises(ConfigurationError):
            SerLocLocator(1, Point(0, 0), n_sectors=0)


class TestLocalization:
    def grid_locators(self, n_sectors=8):
        positions = [
            Point(x, y)
            for x in (0.0, 100.0, 200.0)
            for y in (0.0, 100.0, 200.0)
        ]
        return [
            SerLocLocator(i + 1, p, n_sectors=n_sectors, range_ft=160.0)
            for i, p in enumerate(positions)
        ]

    def test_estimate_near_truth(self):
        locators = self.grid_locators()
        truth = Point(90.0, 110.0)
        estimate = localize_with(locators, truth)
        assert estimate.distance_to(truth) < 40.0

    def test_more_sectors_tighter_estimate(self):
        rng = random.Random(1)
        coarse_err = []
        fine_err = []
        for _ in range(15):
            truth = Point(rng.uniform(50, 150), rng.uniform(50, 150))
            coarse_err.append(
                localize_with(self.grid_locators(4), truth).distance_to(truth)
            )
            fine_err.append(
                localize_with(self.grid_locators(16), truth).distance_to(truth)
            )
        assert sum(fine_err) < sum(coarse_err)

    def test_no_sectors_raises(self):
        with pytest.raises(InsufficientReferencesError):
            serloc_localize([])

    def test_unheard_receiver_raises(self):
        locators = self.grid_locators()
        with pytest.raises(InsufficientReferencesError):
            localize_with(locators, Point(5_000, 5_000))

    def test_disjoint_sectors_raise(self):
        a = Sector(Point(0, 0), 0.0, math.pi / 4, 50.0)
        b = Sector(Point(10_000, 0), 0.0, math.pi / 4, 50.0)
        with pytest.raises(InsufficientReferencesError):
            serloc_localize([a, b])

    def test_lying_locator_shifts_estimate_undetected(self):
        """The paper's criticism: SeRLoc has no defence against a
        compromised locator — the lie just silently shifts the region."""
        honest = self.grid_locators()
        truth = Point(90.0, 110.0)
        baseline = localize_with(honest, truth)

        lying = list(honest)
        lying[4] = SerLocLocator(
            5,
            honest[4].position,
            n_sectors=8,
            range_ft=160.0,
            declared_position=Point(
                honest[4].position.x + 120.0, honest[4].position.y
            ),
        )
        shifted = localize_with(lying, truth)
        # The estimate moved and no exception/detection fired. The shift
        # is bounded by the other locators' sector constraints (SeRLoc's
        # redundancy is real), but nothing flags the liar — the paper's
        # criticism.
        assert shifted.distance_to(baseline) > 2.0

    def test_lying_locator_dominates_sparse_coverage(self):
        """With few locators the lie moves the estimate substantially."""
        truth = Point(90.0, 110.0)
        honest = [
            SerLocLocator(1, Point(0.0, 100.0), n_sectors=4, range_ft=200.0),
            SerLocLocator(2, Point(100.0, 0.0), n_sectors=4, range_ft=200.0),
        ]
        baseline = localize_with(honest, truth)
        lying = [
            honest[0],
            SerLocLocator(
                2,
                Point(100.0, 0.0),
                n_sectors=4,
                range_ft=200.0,
                declared_position=Point(140.0, -40.0),
            ),
        ]
        shifted = localize_with(lying, truth)
        assert shifted.distance_to(baseline) > 15.0
