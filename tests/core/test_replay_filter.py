"""Tests for the Section 2.2 replay-filter cascade."""

import random

import pytest

from repro.core.replay_filter import FilterDecision, ReplayFilterCascade
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.sim.messages import BeaconPacket
from repro.sim.radio import Reception, Transmission
from repro.sim.timing import RttModel
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


def make_cascade(p_d=1.0, seed=0):
    cal = calibrate_rtt(RttModel(), random.Random(seed), samples=3000)
    return (
        ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                p_d, random.Random(seed + 1)
            ),
            local_replay_detector=LocalReplayDetector(cal),
            comm_range_ft=150.0,
        ),
        cal,
    )


def make_reception(claimed, *, via_wormhole=False, fake_symptoms=False):
    packet = BeaconPacket(
        src_id=7, dst_id=50, claimed_location=(claimed.x, claimed.y)
    )
    tx = Transmission(
        packet=packet,
        tx_origin=Point(0, 0),
        departure_time=0.0,
        via_wormhole=via_wormhole,
        fake_wormhole_symptoms=fake_symptoms,
    )
    return Reception(
        packet=packet,
        arrival_time=1.0,
        measured_distance_ft=50.0,
        transmission=tx,
    )


class TestWormholeBranch:
    def test_wormhole_plus_far_location_discarded(self):
        cascade, cal = make_cascade(p_d=1.0)
        r = make_reception(Point(800, 700), via_wormhole=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.REPLAYED_WORMHOLE

    def test_wormhole_with_near_location_detector_decides(self):
        # Declared location within range: the range check is inconclusive,
        # so the detector's verdict (p_d=1 here) decides.
        cascade, cal = make_cascade(p_d=1.0)
        r = make_reception(Point(100, 0), via_wormhole=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.REPLAYED_WORMHOLE

    def test_out_of_range_location_fires_without_detector(self):
        # §2.2.1 regression: a declared location beyond the radio range
        # "cannot have arrived directly" — the wormhole branch fires even
        # when the imperfect detector misses the tunnel (flagged=False).
        cascade, cal = make_cascade(p_d=0.0)
        r = make_reception(Point(800, 700), via_wormhole=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.REPLAYED_WORMHOLE

    def test_undetected_wormhole_slips_through_when_in_range(self):
        # The only escape: tunnel missed by the detector (p_d=0) *and* a
        # declared location the receiver could plausibly hear directly.
        cascade, cal = make_cascade(p_d=0.0)
        r = make_reception(Point(100, 0), via_wormhole=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.ACCEPT

    def test_out_of_range_benign_signal_discarded(self):
        # False-alert risk case from the audit: no tunnel at all, detector
        # silent, but the declared location is out of range — discard.
        cascade, cal = make_cascade(p_d=0.0)
        r = make_reception(Point(800, 700))
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.REPLAYED_WORMHOLE

    def test_receiver_without_location_skips_distance_check(self):
        cascade, cal = make_cascade(p_d=1.0)
        r = make_reception(Point(100, 0), via_wormhole=True)
        decision = cascade.evaluate(
            r, Point(0, 0), cal.x_min, receiver_knows_location=False
        )
        assert decision is FilterDecision.REPLAYED_WORMHOLE

    def test_fake_symptoms_trigger_branch(self):
        cascade, cal = make_cascade(p_d=0.0)  # p_d irrelevant for fakes
        r = make_reception(Point(800, 700), fake_symptoms=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min)
        assert decision is FilterDecision.REPLAYED_WORMHOLE


class TestRttBranch:
    def test_large_rtt_discarded(self):
        cascade, cal = make_cascade()
        r = make_reception(Point(100, 0))
        decision = cascade.evaluate(r, Point(0, 0), cal.x_max + 10_000.0)
        assert decision is FilterDecision.REPLAYED_LOCAL

    def test_honest_rtt_accepted(self):
        cascade, cal = make_cascade()
        r = make_reception(Point(100, 0))
        decision = cascade.evaluate(r, Point(0, 0), cal.x_min + 1.0)
        assert decision is FilterDecision.ACCEPT

    def test_wormhole_branch_checked_first(self):
        # Paper order: the wormhole filter runs before the RTT filter.
        cascade, cal = make_cascade(p_d=1.0)
        r = make_reception(Point(800, 700), via_wormhole=True)
        decision = cascade.evaluate(r, Point(0, 0), cal.x_max + 10_000.0)
        assert decision is FilterDecision.REPLAYED_WORMHOLE
