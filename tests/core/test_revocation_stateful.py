"""Stateful property tests for the base-station revocation protocol.

Hypothesis drives random alert streams against the BaseStation and checks
the protocol's safety invariants after every step:

- a detector never gets more than ``tau_report + 1`` alerts accepted;
- a target is revoked exactly when its alert counter exceeds ``tau_alert``;
- counters never decrease and the revoked set never shrinks;
- a revoked target's counter freezes.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.revocation import BaseStation, RevocationConfig
from repro.crypto.manager import KeyManager

TAU_REPORT = 2
TAU_ALERT = 2
BEACONS = list(range(1, 13))


class RevocationMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.km = KeyManager()
        for beacon_id in BEACONS:
            self.km.enroll(beacon_id, is_beacon=True)
        self.station = BaseStation(
            self.km,
            RevocationConfig(tau_report=TAU_REPORT, tau_alert=TAU_ALERT),
        )
        self.prev_alert_counters = {}
        self.prev_revoked = set()

    @rule(
        detector=st.sampled_from(BEACONS),
        accused=st.sampled_from(BEACONS),
        forge=st.booleans(),
    )
    def submit(self, detector, accused, forge):
        payload = BaseStation.alert_payload(detector, accused)
        if forge:
            tag = b"\x00" * 8
        else:
            tag = self.km.sign_alert_payload(detector, payload)
        accepted = self.station.submit_alert(detector, accused, tag=tag)
        if forge:
            assert not accepted

    @invariant()
    def report_quota_never_exceeded(self):
        for detector, count in self.station.report_counters.items():
            assert count <= TAU_REPORT + 1

    @invariant()
    def revocation_matches_counter(self):
        for target, count in self.station.alert_counters.items():
            if count > TAU_ALERT:
                assert target in self.station.revoked
            else:
                assert target not in self.station.revoked

    @invariant()
    def counters_monotone(self):
        for target, count in self.prev_alert_counters.items():
            assert self.station.alert_counters.get(target, 0) >= count
        self.prev_alert_counters = dict(self.station.alert_counters)

    @invariant()
    def revoked_set_monotone(self):
        assert self.prev_revoked <= self.station.revoked
        self.prev_revoked = set(self.station.revoked)

    @invariant()
    def revoked_counter_frozen_at_threshold_plus_one(self):
        for target in self.station.revoked:
            assert self.station.alert_counters[target] == TAU_ALERT + 1

    @invariant()
    def log_accounts_for_everything(self):
        accepted = sum(1 for r in self.station.log if r.accepted)
        assert accepted == sum(self.station.report_counters.values())
        assert accepted == sum(self.station.alert_counters.values())


TestRevocationMachine = RevocationMachine.TestCase
TestRevocationMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
