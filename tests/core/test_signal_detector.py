"""Tests for the Section 2.1 distance-consistency detector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signal_detector import MaliciousSignalDetector, SignalVerdict
from repro.errors import ConfigurationError
from repro.utils.geometry import Point

coords = st.floats(min_value=0, max_value=1000, allow_nan=False)


class TestCheck:
    def test_consistent_signal(self):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        check = d.check(Point(0, 0), Point(100, 0), measured_distance_ft=95.0)
        assert check.verdict is SignalVerdict.CONSISTENT
        assert not check.is_malicious
        assert check.discrepancy_ft == pytest.approx(5.0)

    def test_exactly_at_threshold_passes(self):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        check = d.check(Point(0, 0), Point(100, 0), measured_distance_ft=110.0)
        assert check.verdict is SignalVerdict.CONSISTENT

    def test_beyond_threshold_flagged(self):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        check = d.check(Point(0, 0), Point(100, 0), measured_distance_ft=111.0)
        assert check.is_malicious

    def test_short_measured_distance_flagged(self):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        assert d.is_malicious(Point(0, 0), Point(100, 0), 80.0)

    def test_location_lie_detected(self):
        # A beacon physically 100 ft away claims to be 300 ft away.
        d = MaliciousSignalDetector(max_error_ft=10.0)
        assert d.is_malicious(Point(0, 0), Point(300, 0), 100.0)

    def test_diagnostics_fields(self):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        check = d.check(Point(0, 0), Point(3, 4), 5.0)
        assert check.calculated_distance_ft == pytest.approx(5.0)
        assert check.measured_distance_ft == 5.0
        assert check.threshold_ft == 10.0

    def test_zero_error_bound(self):
        d = MaliciousSignalDetector(max_error_ft=0.0)
        assert not d.is_malicious(Point(0, 0), Point(3, 4), 5.0)
        assert d.is_malicious(Point(0, 0), Point(3, 4), 5.0001)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            MaliciousSignalDetector(max_error_ft=-1.0)

    @given(coords, coords, coords, coords)
    @settings(max_examples=60)
    def test_truthful_beacon_never_flagged(self, x1, y1, x2, y2):
        """A beacon at its declared location with exact ranging passes."""
        d = MaliciousSignalDetector(max_error_ft=10.0)
        own = Point(x1, y1)
        declared = Point(x2, y2)
        true_distance = own.distance_to(declared)
        assert not d.is_malicious(own, declared, true_distance)

    @given(coords, coords, st.floats(min_value=10.001, max_value=500))
    @settings(max_examples=60)
    def test_excess_discrepancy_always_flagged(self, x, y, excess):
        d = MaliciousSignalDetector(max_error_ft=10.0)
        own = Point(0, 0)
        declared = Point(x, y)
        measured = own.distance_to(declared) + excess
        assert d.is_malicious(own, declared, measured)

    def test_consistent_lie_passes_but_is_harmless(self):
        """The paper's equivalence argument: a lie consistent with the
        measurement is indistinguishable from a beacon actually at the
        declared spot, hence harmless to localization."""
        d = MaliciousSignalDetector(max_error_ft=10.0)
        own = Point(0, 0)
        lie = Point(60, 80)  # 100 ft away
        # Attacker manipulates ranging to match the lie exactly.
        assert not d.is_malicious(own, lie, 100.0)
