"""Edge-case and robustness tests for the pipeline."""

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.errors import ConfigurationError


def tiny(**overrides):
    defaults = dict(
        n_total=60,
        n_beacons=12,
        n_malicious=2,
        field_width_ft=300.0,
        field_height_ft=300.0,
        m_detecting_ids=2,
        rtt_calibration_samples=200,
        wormhole_endpoints=None,
        seed=3,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestDegenerateDeployments:
    def test_all_beacons_malicious(self):
        result = SecureLocalizationPipeline(
            tiny(n_beacons=5, n_malicious=5)
        ).run()
        # No benign beacons: nobody probes, nothing is revoked honestly.
        assert result.probes_sent == 0
        assert result.detection_rate == 0.0
        # No benign beacons exist, so the false-positive rate is
        # undefined (None), not a misleading 0.0.
        assert result.false_positive_rate is None

    def test_no_beacons_at_all(self):
        result = SecureLocalizationPipeline(
            tiny(n_beacons=0, n_malicious=0, collusion=False)
        ).run()
        assert result.probes_sent == 0
        assert result.localization_errors_ft == []

    def test_all_nodes_are_beacons(self):
        result = SecureLocalizationPipeline(
            tiny(n_total=12, n_beacons=12, n_malicious=2)
        ).run()
        assert result.affected_non_beacons_per_malicious == 0.0

    def test_zero_detecting_ids_means_no_detection(self):
        result = SecureLocalizationPipeline(
            tiny(m_detecting_ids=0, collusion=False, p_prime=1.0)
        ).run()
        assert result.detection_rate == 0.0
        assert result.probes_sent == 0

    def test_single_node_field(self):
        result = SecureLocalizationPipeline(
            tiny(n_total=1, n_beacons=1, n_malicious=0, collusion=False)
        ).run()
        assert result.alerts_accepted == 0


class TestExtremeParameters:
    def test_p_prime_zero_attacker_invisible(self):
        result = SecureLocalizationPipeline(
            tiny(p_prime=0.0, collusion=False)
        ).run()
        # A beacon that always answers honestly is undetectable — and
        # harmless (no misleading references either).
        assert result.detection_rate == 0.0
        assert result.affected_non_beacons_per_malicious == 0.0

    def test_p_prime_one_fully_caught(self):
        # Tiny fields have few detectors per liar, so revoke on the first
        # alert (tau=0) — the point here is that P'=1 leaves no way to
        # hide from whoever does probe.
        result = SecureLocalizationPipeline(
            tiny(p_prime=1.0, tau_alert=0)
        ).run()
        assert result.detection_rate == 1.0

    def test_huge_tau_never_revokes(self):
        result = SecureLocalizationPipeline(
            tiny(p_prime=1.0, tau_alert=10_000, collusion=False)
        ).run()
        assert result.revoked_malicious == 0
        # But alerts still flowed.
        assert result.alerts_accepted > 0

    def test_tau_report_zero_throttles_hard(self):
        generous = SecureLocalizationPipeline(
            tiny(p_prime=1.0, tau_report=5, collusion=False)
        ).run()
        throttled = SecureLocalizationPipeline(
            tiny(p_prime=1.0, tau_report=0, collusion=False)
        ).run()
        assert throttled.alerts_accepted <= generous.alerts_accepted

    def test_total_network_loss_disables_everything(self):
        result = SecureLocalizationPipeline(
            tiny(network_loss_rate=1.0, collusion=False)
        ).run()
        assert result.detection_rate == 0.0
        assert result.localization_errors_ft == []

    def test_zero_comm_range_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny(comm_range_ft=0.0)

    def test_max_ranging_error_zero_still_works(self):
        # A perfect ranging technique: every lie is detectable.
        result = SecureLocalizationPipeline(
            tiny(max_ranging_error_ft=0.0, p_prime=1.0, tau_alert=0)
        ).run()
        assert result.detection_rate == 1.0


class TestMetricsSanity:
    def test_result_fields_present(self):
        result = SecureLocalizationPipeline(tiny()).run()
        assert result.probes_sent >= 0
        assert result.alerts_rejected >= 0
        assert isinstance(result.affected_node_ids, set)

    def test_mean_error_nan_when_nothing_solved(self):
        import math

        result = SecureLocalizationPipeline(
            tiny(n_beacons=2, n_malicious=0, collusion=False)
        ).run()
        if not result.localization_errors_ft:
            assert math.isnan(result.mean_localization_error_ft)
