"""Tests for distributed (base-station-less) revocation."""

import pytest

from repro.core.distributed import (
    DistributedConfig,
    DistributedRevocationProtocol,
    RevocationLedger,
)
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def line_network(n_beacons=6, spacing=100.0):
    """Beacons in a line; each hears only its immediate neighbours."""
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(3))
    for i in range(n_beacons):
        net.add_node(Node(i + 1, Point(i * spacing, 0.0), is_beacon=True))
    return net


FAST = DistributedConfig(
    tau_report=2,
    tau_alert=1,
    interval_cycles=500_000.0,
    hop_delay_cycles=10_000.0,
)


class TestLedger:
    def test_revokes_past_threshold(self):
        ledger = RevocationLedger(1, tau_report=5, tau_alert=1)
        ledger.process(10, 99)
        assert 99 not in ledger.revoked
        ledger.process(11, 99)
        assert ledger.revoked == {99}

    def test_duplicate_alerts_ignored(self):
        ledger = RevocationLedger(1, tau_report=5, tau_alert=1)
        assert ledger.process(10, 99)
        assert not ledger.process(10, 99)
        assert 99 not in ledger.revoked

    def test_reporter_quota(self):
        ledger = RevocationLedger(1, tau_report=1, tau_alert=10)
        assert ledger.process(10, 21)
        assert ledger.process(10, 22)
        assert not ledger.process(10, 23)  # counter exceeded the quota

    def test_revoked_target_ignored(self):
        ledger = RevocationLedger(1, tau_report=9, tau_alert=0)
        ledger.process(10, 99)
        assert 99 in ledger.revoked
        assert not ledger.process(11, 99)


class TestProtocol:
    def test_needs_beacons(self):
        engine = Engine()
        net = Network(engine, rngs=RngRegistry(0))
        with pytest.raises(ConfigurationError):
            DistributedRevocationProtocol(net)

    def test_alert_floods_within_ttl(self):
        net = line_network(n_beacons=6)
        proto = DistributedRevocationProtocol(
            net, DistributedConfig(gossip_ttl=2, tau_alert=0)
        )
        reached = proto.publish_alert(1, target_id=99)
        assert reached == 2  # beacons 2 and 3 only

    def test_alerts_verified_after_disclosure(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        proto.publish_alert(2, 99)
        # Before any disclosure: only the reporters' own ledgers count.
        assert 99 not in proto.revoked_by(3)
        proto.run_intervals(4)
        # tau_alert=1 => two alerts revoke everywhere the flood reached.
        assert 99 in proto.revoked_by(3)
        assert 99 in proto.revoked_by(6)

    def test_reporter_counts_own_alert_immediately(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        assert proto.ledgers[1].alert_counters[99] == 1

    def test_quorum_view(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        proto.publish_alert(2, 99)
        proto.run_intervals(4)
        assert 99 in proto.revoked_by_quorum(4)
        assert proto.revoked_by_quorum(len(proto.beacon_ids)) == {99}

    def test_agreement_perfect_on_connected_graph(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        proto.publish_alert(2, 99)
        proto.run_intervals(4)
        assert proto.agreement() == pytest.approx(1.0)

    def test_partition_breaks_agreement(self):
        # Two clusters far apart: alerts never cross the gap.
        engine = Engine()
        net = Network(engine, rngs=RngRegistry(4))
        for i in range(3):
            net.add_node(Node(i + 1, Point(i * 100.0, 0.0), is_beacon=True))
        for i in range(3):
            net.add_node(
                Node(i + 10, Point(i * 100.0 + 5_000.0, 0.0), is_beacon=True)
            )
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        proto.publish_alert(2, 99)
        proto.run_intervals(4)
        # Left cluster revokes 99; right cluster never hears of it.
        assert 99 in proto.revoked_by(3)
        assert 99 not in proto.revoked_by(10)
        assert proto.agreement() < 1.0

    def test_colluders_capped_at_every_node(self):
        net = line_network(n_beacons=5)
        cfg = DistributedConfig(
            tau_report=1,
            tau_alert=1,
            interval_cycles=500_000.0,
            hop_delay_cycles=10_000.0,
        )
        proto = DistributedRevocationProtocol(net, cfg)
        # Beacon 1 is malicious and floods alerts against everyone.
        for target in (20, 21, 22, 23, 24):
            proto.publish_alert(1, target)
        proto.run_intervals(4)
        # Quota tau_report=1 => each honest ledger accepts at most 2 of
        # them, and with tau_alert=1 a single reporter can revoke no one.
        for bid in (2, 3, 4, 5):
            assert proto.revoked_by(bid) == set()

    def test_detection_and_fp_metrics(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        proto.publish_alert(1, 99)
        proto.publish_alert(2, 99)
        proto.run_intervals(4)
        assert proto.detection_rate({99}, quorum=3) == 1.0
        assert proto.false_positive_rate({1, 2, 3}, quorum=3) == 0.0

    def test_unknown_reporter_rejected(self):
        net = line_network()
        proto = DistributedRevocationProtocol(net, FAST)
        with pytest.raises(ConfigurationError):
            proto.publish_alert(999, 1)
