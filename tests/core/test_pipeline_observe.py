"""Pipeline-level guarantees of the observability layer.

The contract under test:

- **off = bit-identical**: ``observe=None`` and an observed run draw the
  same random numbers, so the :class:`PipelineResult` matches exactly —
  across seeds, wormhole placement, and fault injection;
- observation is *additive*: the observed run also yields spans for
  every phase, Figure-4-style RTT histograms, and the §3.1 alert/report
  counters via ``telemetry()``;
- ``telemetry()`` on an unobserved pipeline is an empty dict, not an
  error.
"""

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    SecureLocalizationPipeline,
)
from repro.faults import FaultConfig
from repro.obs import ObserveConfig


def small_config(**overrides):
    """A scaled-down deployment that keeps tests fast."""
    defaults = dict(
        n_total=220,
        n_beacons=40,
        n_malicious=4,
        field_width_ft=500.0,
        field_height_ft=500.0,
        m_detecting_ids=4,
        rtt_calibration_samples=500,
        wormhole_endpoints=((50.0, 50.0), (400.0, 350.0)),
        seed=5,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


SCENARIOS = [
    pytest.param(dict(seed=5), id="wormhole-seed5"),
    pytest.param(dict(seed=17), id="wormhole-seed17"),
    pytest.param(dict(seed=5, wormhole_endpoints=None), id="benign-seed5"),
    pytest.param(
        dict(seed=5, faults=FaultConfig(packet_loss_rate=0.2)),
        id="faulted-seed5",
    ),
    pytest.param(
        dict(
            seed=17,
            faults=FaultConfig(packet_loss_rate=0.1, rtt_jitter_cycles=10.0),
        ),
        id="faulted-seed17",
    ),
]


class TestObserveOffBitIdentical:
    @pytest.mark.parametrize("overrides", SCENARIOS)
    def test_observed_equals_unobserved(self, overrides):
        baseline = SecureLocalizationPipeline(small_config(**overrides)).run()
        observed = SecureLocalizationPipeline(
            small_config(observe=ObserveConfig(), **overrides)
        ).run()
        assert observed == baseline

    def test_unobserved_telemetry_is_empty(self):
        pipeline = SecureLocalizationPipeline(small_config())
        pipeline.run()
        assert pipeline.telemetry() == {}


class TestObservedTelemetry:
    @pytest.fixture(scope="class")
    def telemetry(self):
        pipeline = SecureLocalizationPipeline(
            small_config(observe=ObserveConfig())
        )
        pipeline.run()
        return pipeline.telemetry()

    def test_every_phase_has_a_span(self, telemetry):
        names = {span["name"] for span in telemetry["spans"]}
        assert names == {
            "trial",
            "phase:build",
            "phase:collusion",
            "phase:detection",
            "phase:notices",
            "phase:localization",
            "phase:metrics",
        }

    def test_trial_span_is_root(self, telemetry):
        trial = [s for s in telemetry["spans"] if s["name"] == "trial"][0]
        assert trial["parent"] == 0
        phases = [s for s in telemetry["spans"] if s["name"] != "trial"]
        assert all(span["parent"] == trial["id"] for span in phases)

    def test_rtt_histograms_present(self, telemetry):
        histograms = telemetry["registry"]["histograms"]
        calibration = histograms['rtt_cycles{kind="calibration"}']
        exchange = histograms['rtt_cycles{kind="exchange"}']
        assert calibration["count"] == 500  # rtt_calibration_samples
        assert exchange["count"] > 0
        # The honest-RTT band (~15.5-17.2k cycles) lands inside the fixed
        # bucket layout, not in the +Inf overflow slot.
        assert calibration["counts"][-1] == 0

    def test_section3_counters_present(self, telemetry):
        counters = telemetry["registry"]["counters"]
        accepted = sum(
            value
            for key, value in counters.items()
            if key.startswith("alerts_total{") and 'accepted="true"' in key
        )
        assert accepted > 0
        assert counters["revocations_total"] > 0
        assert counters["probes_sent_total"] > 0
        assert counters["sim_events_total"] > 0
        assert counters["net_deliveries_total"] > 0

    def test_report_counters_present(self, telemetry):
        gauges = telemetry["registry"]["gauges"]
        assert any(key.startswith("bs_alert_counter{") for key in gauges)
        assert any(key.startswith("bs_report_counter{") for key in gauges)

    def test_span_events_in_event_stream(self, telemetry):
        kinds = [event["kind"] for event in telemetry["events"]]
        assert kinds.count("span.begin") == 7
        assert kinds.count("span.end") == 7


class TestObserveKnobs:
    def test_spans_off_metrics_on(self):
        pipeline = SecureLocalizationPipeline(
            small_config(observe=ObserveConfig(spans=False))
        )
        pipeline.run()
        telemetry = pipeline.telemetry()
        assert telemetry["spans"] == []
        assert telemetry["registry"]["counters"]

    def test_rtt_histograms_off(self):
        pipeline = SecureLocalizationPipeline(
            small_config(observe=ObserveConfig(rtt_histograms=False))
        )
        pipeline.run()
        histograms = pipeline.telemetry()["registry"]["histograms"]
        assert histograms == {}

    def test_per_node_rtt_labels(self):
        pipeline = SecureLocalizationPipeline(
            small_config(observe=ObserveConfig(per_node_rtt=True))
        )
        pipeline.run()
        histograms = pipeline.telemetry()["registry"]["histograms"]
        assert any("node=" in key for key in histograms)

    def test_observe_rejects_non_config(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_config(observe={"spans": True})
