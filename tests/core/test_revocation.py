"""Tests for the base-station revocation protocol (Section 3.1)."""

import pytest

from repro.core.revocation import BaseStation, RevocationConfig
from repro.errors import ConfigurationError
from repro.sim.trace import TraceRecorder


@pytest.fixture
def station(key_manager):
    for i in range(1, 11):
        key_manager.enroll(i, is_beacon=True)
    return BaseStation(
        key_manager,
        RevocationConfig(tau_report=2, tau_alert=2),
        trace=TraceRecorder(),
    )


def submit(station, detector, target, **kwargs):
    payload = BaseStation.alert_payload(detector, target)
    tag = station.key_manager.sign_alert_payload(detector, payload)
    return station.submit_alert(detector, target, tag=tag, **kwargs)


class TestConfig:
    def test_defaults(self):
        cfg = RevocationConfig()
        assert cfg.tau_report == 2
        assert cfg.tau_alert == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            RevocationConfig(tau_report=-1)
        with pytest.raises(ConfigurationError):
            RevocationConfig(tau_alert=-1)


class TestAlertIntake:
    def test_accepts_valid_alert(self, station):
        assert submit(station, 1, 5)
        assert station.suspiciousness(5) == 1

    def test_rejects_bad_tag(self, station):
        assert not station.submit_alert(1, 5, tag=b"garbage!")
        assert station.suspiciousness(5) == 0

    def test_rejects_missing_tag(self, station):
        assert not station.submit_alert(1, 5)

    def test_skip_verification_mode(self, station):
        assert station.submit_alert(1, 5, verify=False)

    def test_revocation_at_threshold_crossing(self, station):
        # tau_alert=2: the third accepted alert revokes.
        submit(station, 1, 5)
        submit(station, 2, 5)
        assert not station.is_revoked(5)
        submit(station, 3, 5)
        assert station.is_revoked(5)

    def test_alerts_on_revoked_target_ignored(self, station):
        for d in (1, 2, 3):
            submit(station, d, 5)
        assert not submit(station, 4, 5)
        assert station.suspiciousness(5) == 3

    def test_report_quota(self, station):
        # tau_report=2: alerts accepted while counter <= 2 => 3 accepted.
        results = [submit(station, 1, target) for target in (5, 6, 7, 8, 9)]
        assert results == [True, True, True, False, False]

    def test_quota_is_per_detector(self, station):
        for target in (5, 6, 7, 8):
            submit(station, 1, target)
        assert submit(station, 2, 8)  # detector 2 unaffected

    def test_revoked_detector_can_still_report(self, station):
        # Revoke detector 1 (three alerts against it).
        for d in (2, 3, 4):
            submit(station, d, 1)
        assert station.is_revoked(1)
        # Its own alerts still count (paper: prevents pre-emptive silencing).
        assert submit(station, 1, 9)

    def test_audit_log_reasons(self, station):
        submit(station, 1, 5)
        station.submit_alert(1, 5, tag=b"badbadba")
        for t in (6, 7, 8):
            submit(station, 1, t)
        reasons = [r.reason for r in station.log]
        assert reasons == [
            "accepted",
            "bad-auth",
            "accepted",
            "accepted",
            "quota-exceeded",
        ]


class TestMetrics:
    def test_detection_and_fp_rates(self, station):
        malicious = {9, 10}
        benign = {1, 2, 3, 4, 5}
        for d in (1, 2, 3):
            submit(station, d, 9)
        for d in (1, 2, 3):
            submit(station, d, 5)
        assert station.detection_rate(malicious) == 0.5
        assert station.false_positive_rate(benign) == pytest.approx(0.2)

    def test_rates_with_empty_sets_are_undefined(self, station):
        # Undefined rates are None, not 0.0 — a zero would bias
        # Monte-Carlo means in sweeps with empty populations.
        assert station.detection_rate(set()) is None
        assert station.false_positive_rate(set()) is None

    def test_accepted_alert_count(self, station):
        submit(station, 1, 5)
        station.submit_alert(1, 5, tag=b"garbage!")
        assert station.accepted_alert_count() == 1

    def test_on_revoke_callback(self, key_manager):
        for i in range(1, 5):
            key_manager.enroll(i, is_beacon=True)
        revoked = []
        station = BaseStation(
            key_manager,
            RevocationConfig(tau_report=5, tau_alert=0),
            on_revoke=revoked.append,
        )
        submit(station, 1, 2)
        assert revoked == [2]

    def test_trace_records_revocation(self, station):
        for d in (1, 2, 3):
            submit(station, d, 5)
        assert station.trace.count("revoke") == 1

    def test_record_metrics_is_idempotent(self, station):
        from repro.obs import MetricsRegistry

        for d in (1, 2, 3):
            submit(station, d, 5)
        registry = MetricsRegistry()
        station.record_metrics(registry)
        once = registry.snapshot()
        # A retried finalization must not double-count: the alert log
        # flushes from a cursor and the per-beacon counters are gauges.
        station.record_metrics(registry)
        assert registry.snapshot() == once

    def test_record_metrics_flushes_only_new_events_after_cursor(self, station):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        submit(station, 1, 5)
        station.record_metrics(registry)
        submit(station, 2, 5)
        submit(station, 3, 5)  # third alert revokes target 5
        station.record_metrics(registry)
        counters = registry.snapshot()["counters"]
        assert counters['alerts_total{accepted="true",reason="accepted"}'] == 3
        assert counters["revocations_total"] == 1


class TestCollusionBound:
    def test_colluders_capped_by_quota(self, key_manager):
        """N_a colluders revoke at most N_a (tau'+1)/(tau+1) benign beacons."""
        for i in range(1, 31):
            key_manager.enroll(i, is_beacon=True)
        station = BaseStation(
            key_manager, RevocationConfig(tau_report=2, tau_alert=2)
        )
        colluders = [1, 2, 3]
        benign = list(range(10, 30))
        # Colluders dump alerts target-by-target (optimal strategy).
        alerts = []
        for c in colluders:
            alerts.extend((c, t) for t in benign)
        for c, t in alerts:
            payload = BaseStation.alert_payload(c, t)
            tag = key_manager.sign_alert_payload(c, payload)
            station.submit_alert(c, t, tag=tag)
        # Budget: 3 colluders * 3 accepted alerts = 9; 3 alerts per
        # revocation => at most 3 benign beacons revoked.
        assert len(station.revoked) <= 3
