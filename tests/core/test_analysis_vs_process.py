"""Formula-vs-process property tests.

The paper's closed forms describe stochastic processes (independent
requesters, Bernoulli alerts, binomial thresholds). These tests simulate
the *processes* directly — no network stack, just the probabilistic model
— and verify the formulas in :mod:`repro.core.analysis` predict them.
This is a different check from the full-pipeline comparison: it isolates
formula errors from protocol-implementation effects.
"""

import random

import pytest

from repro.core import analysis
from repro.core.analysis import Population

POP = Population(n_total=2_000, n_beacons=220, n_malicious=20)


def simulate_revocation_process(
    p_prime, m, tau_alert, n_c, population, rng, trials=2_000
):
    """Directly simulate the §3.2 alert process; returns revocation rate."""
    p_benign_beacon = population.n_benign_beacons / population.n_total
    p_r = 1.0 - (1.0 - p_prime) ** m
    revoked = 0
    for _ in range(trials):
        alerts = 0
        for _ in range(n_c):
            if rng.random() < p_benign_beacon and rng.random() < p_r:
                alerts += 1
        if alerts > tau_alert:
            revoked += 1
    return revoked / trials


class TestDetectionRateProcess:
    @pytest.mark.parametrize(
        "p_prime,m,tau,n_c",
        [
            (0.1, 8, 2, 100),
            (0.3, 4, 1, 50),
            (0.05, 8, 4, 150),
            (0.5, 2, 3, 80),
        ],
    )
    def test_formula_matches_direct_simulation(self, p_prime, m, tau, n_c):
        rng = random.Random(hash((p_prime, m, tau, n_c)) & 0xFFFF)
        simulated = simulate_revocation_process(
            p_prime, m, tau, n_c, POP, rng
        )
        predicted = analysis.revocation_detection_rate(
            p_prime, m, tau, n_c, POP
        )
        assert simulated == pytest.approx(predicted, abs=0.035)


class TestDetectingIdProcess:
    def test_pr_formula_matches_probe_process(self):
        """m sticky per-requester decisions; detected iff any is MALICIOUS."""
        rng = random.Random(7)
        p_prime = 0.15
        m = 8
        trials = 20_000
        detected = 0
        for _ in range(trials):
            if any(rng.random() < p_prime for _ in range(m)):
                detected += 1
        assert detected / trials == pytest.approx(
            analysis.detection_rate_pr(p_prime, m), abs=0.01
        )


class TestAffectedProcess:
    def test_n_prime_formula_matches_victim_process(self):
        """Simulate the post-revocation victim count for one liar."""
        rng = random.Random(13)
        p_prime, m, tau, n_c = 0.2, 8, 3, 60
        p_d = analysis.revocation_detection_rate(p_prime, m, tau, n_c, POP)
        p_non_beacon = POP.n_non_beacons / POP.n_total
        trials = 4_000
        total_victims = 0
        for _ in range(trials):
            revoked = rng.random() < p_d
            if revoked:
                continue
            for _ in range(n_c):
                if rng.random() < p_non_beacon and rng.random() < p_prime:
                    total_victims += 1
        simulated = total_victims / trials
        predicted = analysis.affected_non_beacons(p_prime, m, tau, n_c, POP)
        # The formula decouples P_d from the per-requester draws (both
        # derived from the same parameters), matching the paper's
        # independence approximation.
        assert simulated == pytest.approx(predicted, rel=0.15)


class TestReportCounterProcess:
    def test_po_formula_matches_counter_process(self):
        """Simulate one benign beacon's report counter (§3.2, Figure 10)."""
        rng = random.Random(19)
        tau_report = 1
        n_c, m, p_prime, tau_alert = 10, 8, 0.1, 1
        n_wormholes, p_d = 10, 0.9

        p_r = analysis.detection_rate_pr(p_prime, m)
        p_detect = analysis.revocation_detection_rate(
            p_prime, m, tau_alert, n_c, POP
        )
        p1 = p_r * n_c * (1.0 - p_detect) / POP.n_total
        n_f = analysis.false_positives_nf(
            n_wormholes, p_d, tau_report, tau_alert, POP
        )
        p2 = (
            2.0
            * (1.0 - p_d)
            * max(0.0, POP.n_benign_beacons - n_f)
            / (POP.n_benign_beacons**2)
        )

        trials = 200_000
        overflow = 0
        for _ in range(trials):
            counter = 0
            for _ in range(POP.n_malicious):
                if rng.random() < p1:
                    counter += 1
            for _ in range(n_wormholes):
                if rng.random() < p2:
                    counter += 1
            if counter > tau_report:
                overflow += 1
        predicted = analysis.report_counter_overflow(
            tau_report,
            n_c=n_c,
            m=m,
            p_prime=p_prime,
            tau_alert=tau_alert,
            n_wormholes=n_wormholes,
            p_d=p_d,
            population=POP,
        )
        assert overflow / trials == pytest.approx(predicted, abs=5e-4)
