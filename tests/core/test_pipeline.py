"""Tests for the end-to-end secure-localization pipeline."""

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    SecureLocalizationPipeline,
)
from repro.errors import ConfigurationError


def small_config(**overrides):
    """A scaled-down deployment that keeps tests fast."""
    defaults = dict(
        n_total=220,
        n_beacons=40,
        n_malicious=4,
        field_width_ft=500.0,
        field_height_ft=500.0,
        m_detecting_ids=4,
        rtt_calibration_samples=500,
        wormhole_endpoints=((50.0, 50.0), (400.0, 350.0)),
        seed=5,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(n_total=10, n_beacons=20)
        with pytest.raises(ConfigurationError):
            PipelineConfig(p_prime=1.5)
        with pytest.raises(ConfigurationError):
            PipelineConfig(comm_range_ft=0.0)

    def test_paper_defaults(self):
        cfg = PipelineConfig()
        assert cfg.n_total == 1000
        assert cfg.n_beacons == 110
        assert cfg.n_malicious == 10
        assert cfg.comm_range_ft == 150.0
        assert cfg.m_detecting_ids == 8
        # (N_b - N_a) / N = 0.1 as the paper states.
        assert (cfg.n_beacons - cfg.n_malicious) / cfg.n_total == 0.1


class TestBuild:
    def test_node_counts(self):
        p = SecureLocalizationPipeline(small_config()).build()
        assert len(p.benign_beacons) == 36
        assert len(p.malicious_beacons) == 4
        assert len(p.agents) == 180

    def test_build_idempotent(self):
        p = SecureLocalizationPipeline(small_config())
        p.build()
        count = len(p.network.nodes())
        p.build()
        assert len(p.network.nodes()) == count

    def test_detecting_ids_allocated(self):
        p = SecureLocalizationPipeline(small_config()).build()
        for beacon in p.benign_beacons:
            assert len(beacon.detecting_ids) == 4

    def test_wormhole_installed(self):
        p = SecureLocalizationPipeline(small_config()).build()
        assert len(p.network.wormholes) == 1

    def test_no_wormhole_config(self):
        p = SecureLocalizationPipeline(
            small_config(wormhole_endpoints=None)
        ).build()
        assert p.network.wormholes == []


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return SecureLocalizationPipeline(
            small_config(p_prime=0.5)
        ).run()

    def test_detects_most_malicious(self, result):
        # P'=0.5 with m=4 detecting IDs: detection is near-certain.
        assert result.detection_rate >= 0.75

    def test_false_positives_bounded_by_collusion_formula(self, result):
        # Colluders revoke at most N_a (tau'+1)/(tau+1) = 4 benign beacons;
        # wormhole false alerts add a few more.
        assert result.revoked_benign <= 12

    def test_affected_drops_after_revocation(self, result):
        # Revoked beacons' signals are discarded, so the per-malicious
        # victim count stays small.
        assert result.affected_non_beacons_per_malicious < 20

    def test_alert_accounting(self, result):
        assert result.alerts_accepted > 0
        assert result.probes_sent > 0

    def test_localization_happens(self, result):
        assert len(result.localization_errors_ft) > 50
        assert result.mean_localization_error_ft < 200.0

    def test_metrics_in_range(self, result):
        assert 0.0 <= result.detection_rate <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0


class TestBehaviouralContrasts:
    def test_stealthy_attacker_less_detected(self):
        noisy = SecureLocalizationPipeline(small_config(p_prime=0.8)).run()
        quiet = SecureLocalizationPipeline(small_config(p_prime=0.02)).run()
        assert quiet.detection_rate <= noisy.detection_rate

    def test_collusion_drives_false_positives(self):
        with_collusion = SecureLocalizationPipeline(
            small_config(wormhole_endpoints=None)
        ).run()
        without = SecureLocalizationPipeline(
            small_config(wormhole_endpoints=None, collusion=False)
        ).run()
        assert without.false_positive_rate <= with_collusion.false_positive_rate
        assert without.false_positive_rate == 0.0

    def test_seed_reproducibility(self):
        a = SecureLocalizationPipeline(small_config()).run()
        b = SecureLocalizationPipeline(small_config()).run()
        assert a.detection_rate == b.detection_rate
        assert a.revoked_benign == b.revoked_benign
        assert a.affected_non_beacons_per_malicious == (
            b.affected_non_beacons_per_malicious
        )

    def test_honest_network_no_revocations(self):
        # No malicious beacons, no wormhole, no collusion: nothing revoked.
        result = SecureLocalizationPipeline(
            small_config(
                n_malicious=0, collusion=False, wormhole_endpoints=None
            )
        ).run()
        assert result.revoked_benign == 0
        assert result.revoked_malicious == 0
        assert result.false_positive_rate == 0.0

    def test_alert_loss_with_retransmission_preserves_detection(self):
        """The §3.2 assumption: retransmission makes alert delivery
        reliable, so message loss does not degrade revocation."""
        clean = SecureLocalizationPipeline(
            small_config(p_prime=0.5)
        ).run()
        lossy = SecureLocalizationPipeline(
            small_config(p_prime=0.5, alert_loss_rate=0.4, alert_max_retries=10)
        ).run()
        assert lossy.detection_rate >= clean.detection_rate - 0.25

    def test_alert_loss_without_retries_hurts_detection(self):
        reliable = SecureLocalizationPipeline(
            small_config(p_prime=0.5, alert_loss_rate=0.6, alert_max_retries=10)
        ).run()
        unreliable = SecureLocalizationPipeline(
            small_config(p_prime=0.5, alert_loss_rate=0.6, alert_max_retries=0)
        ).run()
        assert unreliable.detection_rate <= reliable.detection_rate

    def test_flooded_notices_match_oracle_when_lossless(self):
        """The §3.2 assumption, mechanized: flooding µTESLA-authenticated
        revocation notices over a lossless radio reproduces the oracle's
        N' exactly."""
        oracle = SecureLocalizationPipeline(
            small_config(p_prime=0.5)
        ).run()
        flood = SecureLocalizationPipeline(
            small_config(
                p_prime=0.5,
                revocation_dissemination="flood",
                notice_interval_cycles=500_000.0,
            )
        ).run()
        assert flood.detection_rate == oracle.detection_rate
        assert flood.affected_non_beacons_per_malicious == pytest.approx(
            oracle.affected_non_beacons_per_malicious
        )

    def test_invalid_dissemination_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(revocation_dissemination="telepathy")

    def test_wormhole_alone_causes_limited_fps(self):
        result = SecureLocalizationPipeline(
            small_config(n_malicious=0, collusion=False)
        ).run()
        # Only undetected-wormhole false alerts remain (p_d = 0.9).
        assert result.false_positive_rate < 0.25
