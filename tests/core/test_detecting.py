"""Tests for the detecting-beacon role (probing + alerting)."""

import random

import pytest

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.localization.beacon import BeaconService
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.timing import RttModel
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


@pytest.fixture
def world():
    engine = Engine()
    rngs = RngRegistry(31)
    net = Network(engine, rngs=rngs)
    km = KeyManager()
    bs = BaseStation(km, RevocationConfig(tau_report=5, tau_alert=0))
    cal = calibrate_rtt(net.rtt_model, rngs.stream("cal"), samples=3000)

    def detecting(node_id, pos, m=4, p_d=1.0):
        km.enroll(node_id, is_beacon=True)
        cascade = ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                p_d, rngs.stream(f"wd-{node_id}")
            ),
            local_replay_detector=LocalReplayDetector(cal),
            comm_range_ft=net.radio.comm_range_ft,
        )
        beacon = DetectingBeacon(
            node_id,
            pos,
            km,
            signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
            filter_cascade=cascade,
            base_station=bs,
            detecting_ids=km.allocate_detecting_ids(node_id, m),
        )
        net.add_node(beacon)
        for did in beacon.detecting_ids:
            net.add_alias(did, node_id)
        return beacon

    return engine, net, km, bs, detecting


class TestProbing:
    def test_benign_target_passes(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        km.enroll(2, is_beacon=True)
        net.add_node(BeaconService(2, Point(100, 0), km))
        detector.probe_all_ids(2)
        engine.run()
        assert len(detector.probe_outcomes) == 4
        assert all(o.decision == "consistent" for o in detector.probe_outcomes)
        assert not bs.revoked

    def test_malicious_target_alerted_and_revoked(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        km.enroll(2, is_beacon=True)
        strategy = AdversaryStrategy(p_n=0.0, location_lie_ft=100.0)
        net.add_node(MaliciousBeacon(2, Point(100, 0), km, strategy))
        detector.probe_all_ids(2)
        engine.run()
        assert any(o.decision == "alert" for o in detector.probe_outcomes)
        assert bs.is_revoked(2)

    def test_fully_masked_target_not_alerted(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        km.enroll(2, is_beacon=True)
        strategy = AdversaryStrategy(p_n=0.0, p_w=1.0)  # always masks
        net.add_node(MaliciousBeacon(2, Point(100, 0), km, strategy))
        detector.probe_all_ids(2)
        engine.run()
        assert all(
            o.decision == "replayed_wormhole" for o in detector.probe_outcomes
        )
        assert not bs.revoked

    def test_local_replay_mask_filtered(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        km.enroll(2, is_beacon=True)
        strategy = AdversaryStrategy(p_n=0.0, p_w=0.0, p_l=1.0)
        net.add_node(MaliciousBeacon(2, Point(100, 0), km, strategy))
        detector.probe_all_ids(2)
        engine.run()
        # Every masked reply is filtered, never indicted: lies whose
        # declared location stays within range are caught by the RTT
        # filter; lies displaced out of range hit the §2.2.1 range check
        # first (the cascade runs the wormhole filter before the RTT one).
        decisions = {o.decision for o in detector.probe_outcomes}
        assert decisions <= {"replayed_local", "replayed_wormhole"}
        assert "replayed_local" in decisions
        assert not bs.revoked

    def test_probe_requires_own_detecting_id(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        with pytest.raises(ValueError):
            detector.probe(2, detecting_id=999_999)

    def test_duplicate_alerts_suppressed(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0), m=8)
        km.enroll(2, is_beacon=True)
        strategy = AdversaryStrategy(p_n=0.0)
        net.add_node(MaliciousBeacon(2, Point(100, 0), km, strategy))
        detector.probe_all_ids(2)
        engine.run()
        accepted = [r for r in bs.log if r.accepted and r.target_id == 2]
        assert len(accepted) == 1  # one alert per (detector, target)

    def test_more_detecting_ids_raise_detection_probability(self, world):
        """Statistical check of P_r = 1-(1-P')^m with P'=0.5."""
        engine, net, km, bs, detecting = world
        hits_m1 = 0
        hits_m8 = 0
        trials = 30
        next_id = 10
        for t in range(trials):
            d1 = detecting(next_id, Point(1000 + 400 * t, 0), m=1)
            d8 = detecting(next_id + 1, Point(1000 + 400 * t, 200), m=8)
            target_id = next_id + 2
            km.enroll(target_id, is_beacon=True)
            strategy = AdversaryStrategy.with_effective(0.5, seed=t)
            net.add_node(
                MaliciousBeacon(
                    target_id, Point(1000 + 400 * t, 100), km, strategy
                )
            )
            d1.probe_all_ids(target_id)
            d8.probe_all_ids(target_id)
            engine.run()
            if any(o.decision == "alert" for o in d1.probe_outcomes):
                hits_m1 += 1
            if any(o.decision == "alert" for o in d8.probe_outcomes):
                hits_m8 += 1
            next_id += 3
        assert hits_m8 > hits_m1
        assert hits_m8 >= trials * 0.8  # 1-(0.5)^8 ~ 0.996


class TestReporting:
    def test_report_without_base_station_noop(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        detector.base_station = None
        assert detector.report_alert(5) is False

    def test_alert_is_authenticated(self, world):
        engine, net, km, bs, detecting = world
        detector = detecting(1, Point(0, 0))
        km.enroll(5, is_beacon=True)
        assert detector.report_alert(5) is True
        assert bs.log[-1].reason == "accepted"
