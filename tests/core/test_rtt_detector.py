"""Tests for RTT calibration and the local-replay detector."""

import random

import pytest

from repro.core.rtt import (
    LocalReplayDetector,
    RttCalibration,
    calibrate_rtt,
    calibration_from_samples,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.sim.timing import BIT_TIME_CYCLES, RttModel, packet_transmission_cycles


class TestCalibration:
    def test_window_from_model(self, rng):
        model = RttModel()
        cal = calibrate_rtt(model, rng, samples=5000)
        assert model.min_rtt() <= cal.x_min < cal.x_max <= model.max_rtt()
        assert cal.samples == 5000

    def test_window_bits_near_paper_margin(self, rng):
        cal = calibrate_rtt(RttModel(), rng, samples=20000)
        assert 3.5 < cal.window_bits <= 4.5

    def test_invalid_window_rejected(self):
        with pytest.raises(CalibrationError):
            RttCalibration(x_min=10.0, x_max=5.0, samples=10)

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(CalibrationError):
            RttCalibration(x_min=1.0, x_max=2.0, samples=0)
        with pytest.raises(ConfigurationError):
            calibrate_rtt(RttModel(), random.Random(0), samples=0)

    def test_from_external_samples(self):
        cal = calibration_from_samples([100.0, 150.0, 120.0])
        assert cal.x_min == 100.0
        assert cal.x_max == 150.0
        assert cal.samples == 3

    def test_samples_reflect_observed_count_from_iterator(self):
        # ``samples`` is the *observed* ECDF count, not a requested
        # number — a generator of unknown length must be counted exactly.
        cal = calibration_from_samples(100.0 + float(i) for i in range(17))
        assert cal.samples == 17

    def test_empty_samples_raise_calibration_error(self):
        with pytest.raises(CalibrationError):
            calibration_from_samples([])
        with pytest.raises(CalibrationError):
            calibration_from_samples(iter(()))


class TestLocalReplayDetector:
    def _detector(self, seed=0):
        cal = calibrate_rtt(RttModel(), random.Random(seed), samples=5000)
        return LocalReplayDetector(cal), cal

    def test_honest_rtts_pass(self):
        det, cal = self._detector()
        model = RttModel()
        rng = random.Random(77)
        flags = sum(
            1 for _ in range(500) if det.is_replayed(model.sample(rng).rtt)
        )
        # A fresh honest sample can exceed the calibrated max only in the
        # extreme tail; with 5000 calibration samples this is rare.
        assert flags <= 5

    def test_full_packet_replay_always_caught(self):
        det, cal = self._detector()
        model = RttModel()
        rng = random.Random(78)
        delay = packet_transmission_cycles(288)
        for _ in range(200):
            rtt = model.sample(rng, extra_delay_cycles=delay).rtt
            assert det.is_replayed(rtt)

    def test_sub_window_delay_undetectable(self):
        # Delays below the window width can slip through — the paper's
        # 4.5-bit blind spot.
        det, cal = self._detector()
        model = RttModel()
        rng = random.Random(79)
        tiny = BIT_TIME_CYCLES  # one bit-time of delay
        caught = sum(
            1
            for _ in range(500)
            if det.is_replayed(model.sample(rng, extra_delay_cycles=tiny).rtt)
        )
        assert caught < 500  # not always detected

    def test_margin_reporting(self):
        det, cal = self._detector()
        assert det.detection_margin_cycles(cal.x_max + 100.0) == pytest.approx(
            100.0
        )
        assert det.detection_margin_cycles(cal.x_max - 100.0) == pytest.approx(
            -100.0
        )

    def test_uncalibrated_use_raises(self):
        det = LocalReplayDetector(None)
        with pytest.raises(CalibrationError):
            det.is_replayed(1000.0)

    def test_counters(self):
        det, cal = self._detector()
        det.is_replayed(cal.x_max + 1)
        det.is_replayed(cal.x_min)
        assert det.checks == 2
        assert det.flagged == 1

    def test_boundary_value_passes(self):
        det, cal = self._detector()
        assert not det.is_replayed(cal.x_max)
