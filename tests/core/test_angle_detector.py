"""Tests for the AoA consistency detector and triangulation solver."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.angle_detector import (
    AngleConsistencyDetector,
    CombinedConsistencyDetector,
    MIN_BEARINGS,
    angular_difference,
    aoa_triangulate,
    wrap_angle,
)
from repro.core.signal_detector import MaliciousSignalDetector
from repro.errors import InsufficientReferencesError
from repro.localization.measurement import AoaModel
from repro.localization.references import LocationReference
from repro.utils.geometry import Point

angles = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


class TestAngleHelpers:
    def test_wrap_angle_range(self):
        for raw in (-10.0, -math.pi, 0.0, math.pi, 7.5):
            assert -math.pi < wrap_angle(raw) <= math.pi

    def test_wrap_identity_inside(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_angular_difference_symmetric(self):
        assert angular_difference(0.1, 3.0) == pytest.approx(
            angular_difference(3.0, 0.1)
        )

    def test_angular_difference_wraps(self):
        # Just above -pi and just below +pi are close.
        assert angular_difference(math.pi - 0.01, -math.pi + 0.01) == (
            pytest.approx(0.02, abs=1e-9)
        )

    @given(angles, angles)
    def test_angular_difference_bounded(self, a, b):
        assert 0.0 <= angular_difference(a, b) <= math.pi + 1e-9


class TestAngleDetector:
    def test_truthful_bearing_passes(self):
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        own = Point(0, 0)
        declared = Point(100, 100)
        true_bearing = math.atan2(100, 100)
        assert not d.is_malicious(own, declared, true_bearing)

    def test_angular_lie_detected(self):
        # Beacon physically north, claims to be east.
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        own = Point(0, 0)
        declared = Point(100, 0)  # east
        measured = math.pi / 2  # signal actually arrives from north
        assert d.is_malicious(own, declared, measured)

    def test_error_within_bound_tolerated(self):
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        own = Point(0, 0)
        declared = Point(100, 0)
        assert not d.is_malicious(own, declared, math.radians(4.9))

    def test_on_ray_lie_escapes_angle_check(self):
        # A lie farther along the same bearing preserves the angle — the
        # case only the distance check catches.
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        own = Point(0, 0)
        declared = Point(300, 0)  # physically at (100, 0), same ray
        assert not d.is_malicious(own, declared, 0.0)

    def test_with_aoa_model_noise(self, rng):
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        model = AoaModel(max_error_rad=math.radians(5))
        own = Point(0, 0)
        beacon = Point(80, 60)
        for _ in range(100):
            measured = model.measure_bearing(own, beacon, rng)
            assert not d.is_malicious(own, beacon, measured)

    @given(
        st.floats(min_value=10, max_value=500),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=40)
    def test_truthful_property(self, dist, bearing):
        d = AngleConsistencyDetector(max_error_rad=math.radians(5))
        own = Point(0, 0)
        declared = Point(dist * math.cos(bearing), dist * math.sin(bearing))
        assert not d.is_malicious(own, declared, bearing)


class TestCombinedDetector:
    def make(self):
        return CombinedConsistencyDetector(
            distance_detector=MaliciousSignalDetector(max_error_ft=10.0),
            angle_detector=AngleConsistencyDetector(
                max_error_rad=math.radians(5)
            ),
        )

    def test_on_ray_lie_caught_by_distance(self):
        d = self.make()
        own = Point(0, 0)
        # Physical beacon at (100, 0); declares (300, 0) on the same ray.
        check = d.check(own, Point(300, 0), 100.0, 0.0)
        assert not check.angle.is_malicious
        assert check.distance.is_malicious
        assert check.is_malicious

    def test_iso_range_lie_caught_by_angle(self):
        d = self.make()
        own = Point(0, 0)
        # Physical beacon at (100, 0); declares (0, 100): same range,
        # different direction.
        check = d.check(own, Point(0, 100), 100.0, 0.0)
        assert check.angle.is_malicious
        assert not check.distance.is_malicious
        assert check.is_malicious

    def test_consistent_lie_passes_both(self):
        # The §2.1 equivalence: consistent with both measurements ==
        # indistinguishable from an honest beacon at the declared spot.
        d = self.make()
        own = Point(0, 0)
        check = d.check(own, Point(100, 0), 100.0, 0.0)
        assert not check.is_malicious

    def test_truthful_beacon_passes(self):
        d = self.make()
        own = Point(30, 40)
        beacon = Point(130, 40)
        check = d.check(own, beacon, 100.0, 0.0)
        assert not check.is_malicious


class TestAoaTriangulation:
    def bearings_from(self, truth, beacons, *, noise=0.0, rng=None):
        refs = []
        for i, b in enumerate(beacons):
            theta = math.atan2(b.y - truth.y, b.x - truth.x)
            if rng is not None:
                theta += rng.uniform(-noise, noise)
            refs.append(
                LocationReference(
                    beacon_id=i + 1,
                    beacon_location=b,
                    measured_distance_ft=0.0,
                    measured_angle_rad=theta,
                )
            )
        return refs

    def test_exact_recovery(self):
        truth = Point(40, 70)
        beacons = [Point(0, 0), Point(200, 0), Point(0, 200)]
        est = aoa_triangulate(self.bearings_from(truth, beacons))
        assert est.distance_to(truth) < 1e-6

    def test_two_bearings_suffice(self):
        truth = Point(40, 70)
        beacons = [Point(0, 0), Point(200, 0)]
        est = aoa_triangulate(self.bearings_from(truth, beacons))
        assert est.distance_to(truth) < 1e-6
        assert MIN_BEARINGS == 2

    def test_noisy_recovery_reasonable(self):
        rng = random.Random(8)
        truth = Point(100, 100)
        beacons = [Point(0, 0), Point(300, 0), Point(0, 300), Point(300, 300)]
        errors = []
        for _ in range(30):
            refs = self.bearings_from(
                truth, beacons, noise=math.radians(5), rng=rng
            )
            errors.append(aoa_triangulate(refs).distance_to(truth))
        assert sum(errors) / len(errors) < 30.0

    def test_too_few_bearings(self):
        truth = Point(1, 1)
        with pytest.raises(InsufficientReferencesError):
            aoa_triangulate(self.bearings_from(truth, [Point(0, 0)]))

    def test_missing_angles_ignored(self):
        refs = [
            LocationReference(
                beacon_id=1,
                beacon_location=Point(0, 0),
                measured_distance_ft=10.0,
            )
        ] * 5
        with pytest.raises(InsufficientReferencesError):
            aoa_triangulate(refs)

    def test_parallel_bearings_rejected(self):
        refs = [
            LocationReference(
                beacon_id=i,
                beacon_location=Point(0, float(i * 100)),
                measured_distance_ft=0.0,
                measured_angle_rad=0.0,
            )
            for i in (1, 2, 3)
        ]
        with pytest.raises(InsufficientReferencesError):
            aoa_triangulate(refs)

    def test_lying_beacon_shifts_estimate(self):
        truth = Point(50, 50)
        honest = [Point(0, 0), Point(200, 0), Point(0, 200)]
        refs = self.bearings_from(truth, honest)
        baseline = aoa_triangulate(refs)
        # Replace one declared location (bearing unchanged — it is
        # physical), shifting the inferred ray.
        lied = list(refs)
        # (150, 0) is OFF the true bearing ray through (0,0) and (50,50),
        # so the lied ray misses the true position.
        lied[0] = LocationReference(
            beacon_id=1,
            beacon_location=Point(150, 0),
            measured_distance_ft=0.0,
            measured_angle_rad=refs[0].measured_angle_rad,
        )
        shifted = aoa_triangulate(lied)
        assert shifted.distance_to(baseline) > 10.0
