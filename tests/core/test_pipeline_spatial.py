"""Differential tests: spatial-index fast paths vs the naive oracle.

The pipeline's reachability and metrics scans have two implementations —
the grid-index fast path (``use_spatial_index=True``, the default) and
the original naive scans kept as a reference oracle. Because both return
query results in the same ``node_id`` order, RNG consumption is
identical and whole-trial results must be **bit-identical**, which is
asserted here for 3 seeds x 2 configurations (with and without a
wormhole), plus per-node agreement of the reachability sets themselves.
"""

import dataclasses

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline

#: Small enough for sub-second trials; dense enough that grid queries
#: span multiple cells and the wormhole actually tunnels signals.
SMALL = dict(
    n_total=130,
    n_beacons=20,
    n_malicious=3,
    field_width_ft=420.0,
    field_height_ft=420.0,
    m_detecting_ids=2,
    rtt_calibration_samples=200,
)
WORMHOLE = ((60.0, 60.0), (330.0, 300.0))


def _config(seed, wormhole, fast):
    cfg = PipelineConfig(seed=seed, wormhole_endpoints=wormhole, **SMALL)
    return cfg if fast else dataclasses.replace(cfg, use_spatial_index=False)


class TestBitIdenticalResults:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    @pytest.mark.parametrize(
        "wormhole", [WORMHOLE, None], ids=["wormhole", "no-wormhole"]
    )
    def test_fast_path_matches_oracle(self, seed, wormhole):
        fast = SecureLocalizationPipeline(_config(seed, wormhole, True)).run()
        naive = SecureLocalizationPipeline(_config(seed, wormhole, False)).run()
        # Dataclass equality covers every field: rates, counts, the full
        # per-agent localization error list, and the affected-id set.
        assert fast == naive
        assert fast.localization_errors_ft == naive.localization_errors_ft
        assert fast.affected_node_ids == naive.affected_node_ids
        assert fast.probes_sent == naive.probes_sent


class TestReachabilityAgreement:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return SecureLocalizationPipeline(_config(5, WORMHOLE, True)).build()

    def test_same_beacons_same_order_for_every_node(self, pipeline):
        queriers = pipeline.agents + pipeline.benign_beacons
        for node in queriers:
            fast = [b.node_id for b in pipeline._reachable_beacons(node)]
            naive = [
                b.node_id for b in pipeline._reachable_beacons_naive(node)
            ]
            assert fast == naive
            assert fast == sorted(fast)

    def test_wormhole_extends_reachability(self, pipeline):
        # At least one querier must reach a beacon only through the
        # tunnel, otherwise this deployment isn't exercising the merge.
        net = pipeline.network
        r = pipeline.config.comm_range_ft
        tunnel_only = 0
        for node in pipeline.agents:
            direct = {b.node_id for b in net.beacons_within(node.position, r)}
            full = {b.node_id for b in pipeline._reachable_beacons(node)}
            tunnel_only += len(full - direct)
        assert tunnel_only > 0

    def test_requester_counts_agree(self, pipeline):
        malicious_ids = {b.node_id for b in pipeline.malicious_beacons}
        fast = pipeline._requester_counts(malicious_ids)
        original = pipeline.config
        pipeline.config = dataclasses.replace(original, use_spatial_index=False)
        try:
            naive = pipeline._requester_counts(malicious_ids)
        finally:
            pipeline.config = original
        assert fast == naive
