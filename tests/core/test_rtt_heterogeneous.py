"""Tests for per-hardware-pair RTT calibration (paper §2.2.2 extension)."""

import random

import pytest

from repro.core.rtt import RttCalibrationTable
from repro.errors import CalibrationError
from repro.sim.timing import RttModel, packet_transmission_cycles, sample_mixed_rtt

#: Fast hardware: small register delays and jitter.
FAST = RttModel(base_delay_cycles=2_000.0, jitter_cycles=200.0)
#: Slow hardware: large register delays and jitter.
SLOW = RttModel(base_delay_cycles=8_000.0, jitter_cycles=800.0)


class TestMixedSampling:
    def test_mixed_between_pure_extremes(self, rng):
        fast = [sample_mixed_rtt(FAST, FAST, rng) for _ in range(500)]
        slow = [sample_mixed_rtt(SLOW, SLOW, rng) for _ in range(500)]
        mixed = [sample_mixed_rtt(FAST, SLOW, rng) for _ in range(500)]
        assert max(fast) < min(mixed)
        assert max(mixed) < min(slow)

    def test_role_symmetry_for_identical_delay_models(self, rng):
        ab = [sample_mixed_rtt(FAST, SLOW, rng) for _ in range(2000)]
        ba = [sample_mixed_rtt(SLOW, FAST, rng) for _ in range(2000)]
        assert sum(ab) / len(ab) == pytest.approx(
            sum(ba) / len(ba), rel=0.02
        )

    def test_extra_delay_propagates(self, rng):
        clean = sample_mixed_rtt(FAST, SLOW, rng)
        delayed = sample_mixed_rtt(
            FAST, SLOW, rng, extra_delay_cycles=50_000.0
        )
        assert delayed > clean + 40_000.0

    def test_negative_inputs_rejected(self, rng):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sample_mixed_rtt(FAST, SLOW, rng, distance_ft=-1.0)
        with pytest.raises(ConfigurationError):
            sample_mixed_rtt(FAST, SLOW, rng, extra_delay_cycles=-1.0)


class TestCalibrationTable:
    def make_table(self, seed=0):
        table = RttCalibrationTable()
        table.register_type("fast", FAST)
        table.register_type("slow", SLOW)
        table.calibrate_all(random.Random(seed), samples=3000)
        return table

    def test_windows_are_pair_specific(self):
        table = self.make_table()
        ff = table.window("fast", "fast")
        ss = table.window("slow", "slow")
        fs = table.window("fast", "slow")
        assert ff.x_max < fs.x_min or ff.x_max < fs.x_max
        assert fs.x_max < ss.x_max
        assert ff.x_max < ss.x_min  # fully disjoint hardware profiles

    def test_uncalibrated_pair_raises(self):
        table = RttCalibrationTable()
        table.register_type("fast", FAST)
        with pytest.raises(CalibrationError):
            table.window("fast", "fast")

    def test_detector_for_uncalibrated_pair_raises(self):
        # detector_for must fail eagerly at lookup, not hand back a
        # detector that explodes (or silently accepts) at check time.
        table = RttCalibrationTable()
        table.register_type("fast", FAST)
        table.register_type("slow", SLOW)
        table.calibrate_pair("fast", "slow", random.Random(0))
        with pytest.raises(CalibrationError):
            table.detector_for("slow", "fast")

    def test_ordered_pairs_calibrated_independently(self):
        # (A, B) and (B, A) are distinct table entries: calibrating one
        # direction says nothing about the other.
        table = RttCalibrationTable()
        table.register_type("fast", FAST)
        table.register_type("slow", SLOW)
        table.calibrate_pair("fast", "slow", random.Random(0))
        assert table.window("fast", "slow") is not None
        with pytest.raises(CalibrationError):
            table.window("slow", "fast")

    def test_ordered_pair_windows_agree_in_distribution(self):
        # Conformance note: the RTT sum is role-symmetric in
        # distribution (each endpoint contributes one TX-side and one
        # RX-side delay in either role), so the (A,B) and (B,A) windows
        # can differ only by sampling noise — never systematically, even
        # for very different per-delay models like FAST vs SLOW.
        table = self.make_table()
        ab = table.window("fast", "slow")
        ba = table.window("slow", "fast")
        # Window endpoints are extremum estimators, so they carry more
        # sampling noise than a mean; a fifth of the combined jitter is
        # far below the systematic offset a true asymmetry would show.
        jitter = FAST.jitter_cycles + SLOW.jitter_cycles
        assert ab.x_min == pytest.approx(ba.x_min, abs=0.2 * jitter)
        assert ab.x_max == pytest.approx(ba.x_max, abs=0.2 * jitter)
        # Independent samples: realized endpoints are distinct draws.
        assert (ab.x_min, ab.x_max) != (ba.x_min, ba.x_max)

    def test_unknown_type_raises(self):
        table = RttCalibrationTable()
        with pytest.raises(CalibrationError):
            table.calibrate_pair("alien", "alien", random.Random(0))

    def test_pairwise_detector_accepts_honest_mixed_exchange(self):
        table = self.make_table()
        detector = table.detector_for("fast", "slow")
        rng = random.Random(5)
        flags = sum(
            1
            for _ in range(500)
            if detector.is_replayed(sample_mixed_rtt(FAST, SLOW, rng))
        )
        assert flags <= 5

    def test_pairwise_detector_catches_replay(self):
        table = self.make_table()
        detector = table.detector_for("fast", "slow")
        rng = random.Random(6)
        delay = packet_transmission_cycles(288)
        assert all(
            detector.is_replayed(
                sample_mixed_rtt(FAST, SLOW, rng, extra_delay_cycles=delay)
            )
            for _ in range(200)
        )

    def test_global_window_misses_fast_pair_replays(self):
        """Failure mode 1: calibrating on slow hardware lets a replay on a
        fast pair hide inside the (too-wide) window."""
        table = self.make_table()
        slow_window_detector = table.detector_for("slow", "slow")
        rng = random.Random(7)
        # A replay between fast nodes delayed by much less than the gap
        # between fast and slow profiles:
        sneaky_delay = 8_000.0
        caught = sum(
            1
            for _ in range(300)
            if slow_window_detector.is_replayed(
                sample_mixed_rtt(FAST, FAST, rng, extra_delay_cycles=sneaky_delay)
            )
        )
        assert caught == 0  # invisible to the slow-calibrated window
        # The correct per-pair window sees it every time.
        fast_detector = table.detector_for("fast", "fast")
        caught_correct = sum(
            1
            for _ in range(300)
            if fast_detector.is_replayed(
                sample_mixed_rtt(FAST, FAST, rng, extra_delay_cycles=sneaky_delay)
            )
        )
        assert caught_correct == 300

    def test_global_window_false_flags_slow_pairs(self):
        """Failure mode 2: calibrating on fast hardware flags every honest
        exchange between slow nodes as a replay."""
        table = self.make_table()
        fast_window_detector = table.detector_for("fast", "fast")
        rng = random.Random(8)
        flagged = sum(
            1
            for _ in range(300)
            if fast_window_detector.is_replayed(
                sample_mixed_rtt(SLOW, SLOW, rng)
            )
        )
        assert flagged == 300
