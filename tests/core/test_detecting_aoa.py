"""Tests for angle-aware detection vs the signal-aligning liar."""

import math

import pytest

from repro.attacks.aligned import SignalAligningLiar
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.detecting_aoa import AngleDetectingBeacon
from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


class World:
    def __init__(self, seed=17):
        self.engine = Engine()
        self.rngs = RngRegistry(seed)
        self.net = Network(self.engine, rngs=self.rngs)
        self.net.ranging_error = lambda d, rng: 0.0  # isolate the attack
        self.km = KeyManager()
        self.bs = BaseStation(
            self.km, RevocationConfig(tau_report=5, tau_alert=0)
        )
        self.cal = calibrate_rtt(
            self.net.rtt_model, self.rngs.stream("cal"), samples=800
        )

    def cascade(self, name):
        return ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                1.0, self.rngs.stream(f"wd{name}")
            ),
            local_replay_detector=LocalReplayDetector(self.cal),
            comm_range_ft=self.net.radio.comm_range_ft,
        )

    def add_detector(self, node_id, pos, *, angle_aware):
        self.km.enroll(node_id, is_beacon=True)
        cls = AngleDetectingBeacon if angle_aware else DetectingBeacon
        beacon = cls(
            node_id,
            pos,
            self.km,
            signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
            filter_cascade=self.cascade(node_id),
            base_station=self.bs,
            detecting_ids=self.km.allocate_detecting_ids(node_id, 4),
        )
        self.net.add_node(beacon)
        for did in beacon.detecting_ids:
            self.net.add_alias(did, node_id)
        return beacon

    def add_aligned_liar(self, node_id, pos, requester_positions):
        self.km.enroll(node_id, is_beacon=True)
        liar = SignalAligningLiar(
            node_id,
            pos,
            self.km,
            AdversaryStrategy(p_n=0.0),
            known_requester_positions=requester_positions,
        )
        self.net.add_node(liar)
        return liar


class TestAlignedLiar:
    def test_distance_only_detector_fooled(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=False)
        positions = {}
        liar = world.add_aligned_liar(2, Point(100, 0), positions)
        # The attacker knows every detecting ID's physical origin (all are
        # the detector's own position).
        for did in detector.detecting_ids:
            positions[did] = detector.position
        liar.known_requester_positions.update(positions)
        detector.probe_all_ids(2)
        world.engine.run()
        # The lie is distance-consistent: every probe reads "consistent".
        assert all(
            o.decision == "consistent" for o in detector.probe_outcomes
        )
        assert not world.bs.revoked

    def test_angle_aware_detector_catches_it(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=True)
        positions = {did: detector.position for did in detector.detecting_ids}
        world.add_aligned_liar(2, Point(100, 0), positions)
        detector.probe_all_ids(2)
        world.engine.run()
        assert any(o.decision == "alert" for o in detector.probe_outcomes)
        assert detector.angle_only_catches >= 1
        assert world.bs.is_revoked(2)

    def test_lie_really_is_distance_consistent(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=True)
        positions = {did: detector.position for did in detector.detecting_ids}
        liar = world.add_aligned_liar(2, Point(100, 0), positions)
        detector.probe_all_ids(2)
        world.engine.run()
        # The angle fired, the distance check did not (pure angle catch).
        assert detector.angle_only_catches == len(detector.detecting_ids)

    def test_lie_displaced_by_expected_angle(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=False)
        positions = {did: detector.position for did in detector.detecting_ids}
        liar = world.add_aligned_liar(2, Point(100, 0), positions)
        did = detector.detecting_ids[0]
        from repro.sim.messages import BeaconRequest

        lie_capture = []
        original_reply = liar._reply

        def spy(request, declared, **kwargs):
            lie_capture.append(declared)
            original_reply(request, declared, **kwargs)

        liar._reply = spy
        detector.probe(2, did)
        world.engine.run()
        (lie,) = lie_capture
        # Same radius from the requester, ~60 degrees off the true ray.
        assert lie.distance_to(detector.position) == pytest.approx(100.0)
        angle = math.atan2(lie.y, lie.x)
        assert abs(abs(angle) - math.radians(60.0)) < 1e-6

    def test_honest_beacon_passes_angle_check(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=True)
        from repro.localization.beacon import BeaconService

        world.km.enroll(3, is_beacon=True)
        world.net.add_node(BeaconService(3, Point(0, 120), world.km))
        detector.probe_all_ids(3)
        world.engine.run()
        assert all(
            o.decision == "consistent" for o in detector.probe_outcomes
        )
        assert not world.bs.revoked

    def test_unknown_requester_falls_back_to_plain_lie(self):
        world = World()
        detector = world.add_detector(1, Point(0, 0), angle_aware=False)
        # Attacker has no position intel: plain (inconsistent) lie, which
        # even the distance-only detector catches.
        world.add_aligned_liar(2, Point(100, 0), {})
        detector.probe_all_ids(2)
        world.engine.run()
        assert any(o.decision == "alert" for o in detector.probe_outcomes)
