"""Pipeline-level guarantees of the fault-injection layer.

The contract under test:

- **off = bit-identical**: ``faults=None`` and an all-zero
  :class:`FaultConfig` draw zero extra random numbers, so results match
  the seed baseline exactly;
- **on = deterministic**: a faulted config is a pure function of its
  seed — same config, same seed, same result;
- faults visibly move the metrics they target (crash stops probing,
  loss suppresses detections) and surface in the profile counters.
"""

import dataclasses

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.errors import BudgetExceededError, ConfigurationError
from repro.faults import FaultConfig


def small_config(**overrides):
    """A scaled-down deployment that keeps tests fast."""
    defaults = dict(
        n_total=220,
        n_beacons=40,
        n_malicious=4,
        field_width_ft=500.0,
        field_height_ft=500.0,
        m_detecting_ids=4,
        rtt_calibration_samples=500,
        wormhole_endpoints=((50.0, 50.0), (400.0, 350.0)),
        seed=5,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestFaultsOffBitIdentical:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_none_equals_all_zero_config(self, seed):
        baseline = SecureLocalizationPipeline(
            small_config(seed=seed)
        ).run()
        zeroed = SecureLocalizationPipeline(
            small_config(seed=seed, faults=FaultConfig())
        ).run()
        assert zeroed == baseline

    def test_no_injector_when_disabled(self):
        p = SecureLocalizationPipeline(small_config(faults=FaultConfig()))
        p.build()
        assert p.fault_injector is None


class TestFaultsOnDeterministic:
    FAULTS = FaultConfig(
        packet_loss_rate=0.1,
        packet_duplication_rate=0.05,
        duplicate_delay_cycles=50.0,
        rtt_jitter_cycles=200.0,
        clock_drift_ppm=50.0,
        node_crash_rate=0.05,
        crash_horizon_cycles=1e6,
    )

    def test_same_seed_same_result(self):
        config = small_config(faults=self.FAULTS)
        first = SecureLocalizationPipeline(config).run()
        second = SecureLocalizationPipeline(config).run()
        assert first == second

    def test_different_seeds_differ(self):
        a = SecureLocalizationPipeline(
            small_config(seed=5, faults=self.FAULTS)
        ).run()
        b = SecureLocalizationPipeline(
            small_config(seed=6, faults=self.FAULTS)
        ).run()
        assert a != b

    def test_fault_counters_in_profile(self):
        p = SecureLocalizationPipeline(small_config(faults=self.FAULTS))
        p.run()
        counters = p.profile_snapshot()["counters"]
        assert counters["fault_packet_loss"] > 0
        assert counters["fault_rtt_jitter"] > 0


class TestFaultEffects:
    def test_total_crash_stops_detection(self):
        faults = FaultConfig(node_crash_rate=1.0, crash_horizon_cycles=0.0)
        result = SecureLocalizationPipeline(
            small_config(faults=faults)
        ).run()
        assert result.detection_rate == 0.0
        assert result.probes_sent == 0

    def test_total_loss_stops_detection(self):
        faults = FaultConfig(packet_loss_rate=1.0)
        result = SecureLocalizationPipeline(
            small_config(faults=faults)
        ).run()
        assert result.detection_rate == 0.0

    def test_moderate_loss_degrades_detection(self):
        clean = SecureLocalizationPipeline(small_config()).run()
        lossy = SecureLocalizationPipeline(
            small_config(faults=FaultConfig(packet_loss_rate=0.3))
        ).run()
        assert lossy.detection_rate <= clean.detection_rate


class TestEventBudget:
    def test_budget_aborts_runaway_run(self):
        config = small_config(max_events=50)
        with pytest.raises(BudgetExceededError):
            SecureLocalizationPipeline(config).run()

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(max_events=0)


class TestFaultConfigRoundTrip:
    def test_manifest_round_trip(self, tmp_path):
        from repro.experiments.config_io import load_manifest, save_manifest

        config = small_config(
            faults=FaultConfig(packet_loss_rate=0.2, rtt_jitter_cycles=10.0)
        )
        path = save_manifest(config, tmp_path / "manifest.json")
        assert load_manifest(path) == config

    def test_cache_key_distinguishes_fault_scenarios(self):
        from repro.experiments.runner import cache_key

        clean = small_config()
        faulted = small_config(faults=FaultConfig(packet_loss_rate=0.2))
        zeroed = small_config(faults=FaultConfig())
        assert cache_key(clean) != cache_key(faulted)
        # An all-zero FaultConfig produces identical results but is a
        # distinct config value, so it hashes apart — correct, if
        # conservative (a spurious miss, never a wrong hit).
        assert cache_key(clean) != cache_key(zeroed)

    def test_rejects_plain_dict_faults(self):
        with pytest.raises(ConfigurationError):
            small_config(faults={"packet_loss_rate": 0.1})
