"""Tests for flooded, µTESLA-authenticated revocation notices."""

import pytest

from repro.core.notices import (
    AuthenticatedNotice,
    NoticeAwareAgent,
    NoticeDistributor,
    NoticeRelay,
)
from repro.crypto.manager import KeyManager
from repro.localization.references import LocationReference
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point

INTERVAL = 500_000.0


def build_world(n_relays=6, spacing=120.0, seed=5):
    """A line of relays so the flood must travel multiple hops."""
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(seed))
    km = KeyManager()
    gateway = net.add_node(Node(1, Point(0.0, 0.0)))
    distributor = NoticeDistributor(
        net, gateway, interval_cycles=INTERVAL
    )
    relays = []
    for i in range(n_relays):
        relay = NoticeRelay(10 + i, Point((i + 1) * spacing, 0.0))
        net.add_node(relay)
        relay.install_notice_handling(
            distributor.commitment, interval_cycles=INTERVAL
        )
        relays.append(relay)
    km.enroll(99)
    agent = NoticeAwareAgent(
        99, Point((n_relays + 1) * spacing, 0.0), km
    )
    net.add_node(agent)
    agent.install_notice_handling(
        distributor.commitment, interval_cycles=INTERVAL
    )
    return engine, net, distributor, relays, agent


def run_protocol(engine, net, distributor, intervals=4):
    for _ in range(intervals):
        engine.run_until(engine.now() + INTERVAL)
        distributor.disclose_key()
    engine.run()


class TestFloodDissemination:
    def test_notice_reaches_far_agent(self):
        engine, net, distributor, relays, agent = build_world()
        distributor.announce_revocation(7)
        run_protocol(engine, net, distributor)
        assert 7 in agent.applied_revocations
        assert 7 in agent.revoked_beacons

    def test_all_relays_learn_it(self):
        engine, net, distributor, relays, agent = build_world()
        distributor.announce_revocation(7)
        run_protocol(engine, net, distributor)
        for relay in relays:
            assert 7 in relay.applied_revocations

    def test_not_applied_before_key_disclosure(self):
        engine, net, distributor, relays, agent = build_world()
        distributor.announce_revocation(7)
        engine.run()  # flood happens, no disclosure yet
        assert 7 not in agent.applied_revocations

    def test_agent_discards_references_of_revoked(self):
        engine, net, distributor, relays, agent = build_world()
        agent.references.append(
            LocationReference(
                beacon_id=7,
                beacon_location=Point(0, 0),
                measured_distance_ft=10.0,
            )
        )
        distributor.announce_revocation(7)
        run_protocol(engine, net, distributor)
        assert agent.references == []

    def test_multiple_notices(self):
        engine, net, distributor, relays, agent = build_world()
        distributor.announce_revocation(7)
        distributor.announce_revocation(8)
        run_protocol(engine, net, distributor)
        assert agent.applied_revocations == {7, 8}


class TestSecurity:
    def test_forged_notice_rejected(self):
        engine, net, distributor, relays, agent = build_world(n_relays=2)
        forged = AuthenticatedNotice(
            src_id=1,
            dst_id=0,
            revoked_id=66,
            interval=1,
            mac=b"\x00" * 8,
        )
        attacker = net.add_node(Node(666, Point(120.0, 10.0)))
        net.broadcast(attacker, forged)
        run_protocol(engine, net, distributor)
        assert 66 not in agent.applied_revocations
        for relay in relays:
            assert 66 not in relay.applied_revocations

    def test_replayed_notice_after_disclosure_rejected(self):
        # An attacker replaying a notice *after* its interval key became
        # public fails µTESLA's security condition.
        engine, net, distributor, relays, agent = build_world(n_relays=2)
        distributor.announce_revocation(7)
        run_protocol(engine, net, distributor, intervals=5)
        # Craft a "new" notice reusing the old (now public) interval.
        old = AuthenticatedNotice(
            src_id=1, dst_id=0, revoked_id=77, interval=1, mac=b"\x11" * 8
        )
        attacker = net.add_node(Node(666, Point(120.0, 10.0)))
        net.broadcast(attacker, old)
        run_protocol(engine, net, distributor, intervals=2)
        assert 77 not in agent.applied_revocations

    def test_duplicate_flood_suppression(self):
        engine, net, distributor, relays, agent = build_world(n_relays=3)
        distributor.announce_revocation(7)
        engine.run()
        deliveries_first = net.engine.events_processed
        # Re-flooding the identical notice is suppressed by every node,
        # so the event count grows far less than the first flood.
        distributor.announce_revocation(7)
        engine.run()
        growth = net.engine.events_processed - deliveries_first
        assert growth <= deliveries_first
