"""Tests for generation-aware detection with promoted beacons."""

import random

import pytest

from repro.core.promoted import (
    GenerationAwareDetector,
    PromotedAnchor,
    uncertainty_for_generation,
)
from repro.core.signal_detector import MaliciousSignalDetector
from repro.errors import ConfigurationError
from repro.utils.geometry import Point


def anchor(x, y, gen=0, aid=1):
    return PromotedAnchor(
        anchor_id=aid, declared_location=Point(x, y), generation=gen
    )


class TestUncertainty:
    def test_gps_beacons_exact(self):
        assert uncertainty_for_generation(0, 10.0) == 0.0

    def test_grows_linearly(self):
        assert uncertainty_for_generation(3, 10.0) == 30.0

    def test_negative_generation_rejected(self):
        with pytest.raises(ConfigurationError):
            uncertainty_for_generation(-1, 10.0)


class TestGenerationAwareDetector:
    def test_gen0_matches_plain_detector(self):
        d = GenerationAwareDetector(max_error_ft=10.0)
        plain = MaliciousSignalDetector(max_error_ft=10.0)
        det = anchor(0, 0, gen=0)
        tgt = anchor(100, 0, gen=0, aid=2)
        for measured in (89.0, 95.0, 111.0):
            assert (
                d.check(det, tgt, measured).is_malicious
                == plain.is_malicious(Point(0, 0), Point(100, 0), measured)
            )

    def test_threshold_widens_with_generations(self):
        d = GenerationAwareDetector(max_error_ft=10.0)
        assert d.threshold_ft(anchor(0, 0, 0), anchor(1, 1, 0)) == 10.0
        assert d.threshold_ft(anchor(0, 0, 1), anchor(1, 1, 0)) == 20.0
        assert d.threshold_ft(anchor(0, 0, 1), anchor(1, 1, 2)) == 40.0

    def test_honest_promoted_anchor_not_flagged(self):
        """An honest gen-2 target whose declared location is off by its
        worst-case accumulated error must pass the widened check."""
        d = GenerationAwareDetector(max_error_ft=10.0)
        det = anchor(0, 0, gen=0)
        # Target physically at (100, 0) declares (120, 0): 20 ft of honest
        # accumulated error (gen 2 allows up to 20).
        tgt = anchor(120, 0, gen=2, aid=2)
        measured = 100.0  # true distance, exact ranging
        assert not d.check(det, tgt, measured).is_malicious

    def test_same_case_flagged_by_naive_detector(self):
        plain = MaliciousSignalDetector(max_error_ft=10.0)
        assert plain.is_malicious(Point(0, 0), Point(120, 0), 100.0)

    def test_large_lie_still_detected(self):
        d = GenerationAwareDetector(max_error_ft=10.0)
        det = anchor(0, 0, gen=1)
        tgt = anchor(250, 0, gen=2, aid=2)  # physically ~100 ft away
        assert d.check(det, tgt, 100.0).is_malicious

    def test_minimum_detectable_lie_grows_with_generation(self):
        d = GenerationAwareDetector(max_error_ft=10.0)
        floor0 = d.minimum_detectable_lie_ft(anchor(0, 0, 0), anchor(1, 1, 0))
        floor3 = d.minimum_detectable_lie_ft(anchor(0, 0, 0), anchor(1, 1, 3))
        assert floor0 == 20.0
        assert floor3 == 50.0
        assert floor3 > floor0  # the paper's error-accumulation cost

    def test_statistical_no_false_positives_on_honest_chain(self):
        """Honest promoted anchors with within-bound errors never alarm."""
        d = GenerationAwareDetector(max_error_ft=10.0)
        rng = random.Random(13)
        flagged = 0
        for _ in range(300):
            gen_d = rng.randint(0, 3)
            gen_t = rng.randint(0, 3)
            true_det = Point(rng.uniform(0, 500), rng.uniform(0, 500))
            true_tgt = Point(rng.uniform(0, 500), rng.uniform(0, 500))
            # Honest declared locations: within accumulated uncertainty.
            decl_det = Point(
                true_det.x + rng.uniform(-1, 1) * gen_d * 10.0, true_det.y
            )
            decl_tgt = Point(
                true_tgt.x + rng.uniform(-1, 1) * gen_t * 10.0, true_tgt.y
            )
            measured = true_det.distance_to(true_tgt) + rng.uniform(-10, 10)
            check = GenerationAwareDetector(10.0).check(
                PromotedAnchor(1, decl_det, gen_d),
                PromotedAnchor(2, decl_tgt, gen_t),
                measured,
            )
            flagged += check.is_malicious
        assert flagged == 0
