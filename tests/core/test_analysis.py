"""Tests for the closed-form analysis (Sections 2.3 and 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis
from repro.core.analysis import PAPER_POPULATION, Population
from repro.errors import ConfigurationError

probs = st.floats(min_value=0.0, max_value=1.0)


class TestPopulation:
    def test_paper_defaults(self):
        assert PAPER_POPULATION.benign_beacon_fraction == pytest.approx(0.1)
        assert PAPER_POPULATION.n_benign_beacons == 1000
        assert PAPER_POPULATION.n_non_beacons == 8990

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            Population(n_total=10, n_beacons=20, n_malicious=0)
        with pytest.raises(ConfigurationError):
            Population(n_total=10, n_beacons=5, n_malicious=6)


class TestPEffective:
    def test_formula(self):
        assert analysis.p_effective(0.5, 0.5, 0.5) == pytest.approx(0.125)

    def test_any_mask_at_one_kills_effectiveness(self):
        assert analysis.p_effective(1.0, 0.0, 0.0) == 0.0
        assert analysis.p_effective(0.0, 1.0, 0.0) == 0.0
        assert analysis.p_effective(0.0, 0.0, 1.0) == 0.0

    @given(probs, probs, probs)
    def test_bounded(self, a, b, c):
        assert 0.0 <= analysis.p_effective(a, b, c) <= 1.0


class TestDetectionRatePr:
    def test_single_id(self):
        assert analysis.detection_rate_pr(0.3, 1) == pytest.approx(0.3)

    def test_known_value(self):
        # 1 - 0.9^8
        assert analysis.detection_rate_pr(0.1, 8) == pytest.approx(0.5695, abs=1e-4)

    def test_monotone_in_m(self):
        rates = [analysis.detection_rate_pr(0.2, m) for m in (1, 2, 4, 8, 16)]
        assert rates == sorted(rates)
        assert len(set(rates)) == len(rates)

    def test_monotone_in_p(self):
        rates = [analysis.detection_rate_pr(p / 10, 4) for p in range(11)]
        assert rates == sorted(rates)

    def test_endpoints(self):
        assert analysis.detection_rate_pr(0.0, 8) == 0.0
        assert analysis.detection_rate_pr(1.0, 8) == 1.0

    def test_m_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            analysis.detection_rate_pr(0.5, 0)

    @given(probs, st.integers(min_value=1, max_value=32))
    def test_pr_at_least_pprime(self, p, m):
        assert analysis.detection_rate_pr(p, m) >= p - 1e-12


class TestRevocationDetectionRate:
    def test_zero_requesters_zero_detection(self):
        assert analysis.revocation_detection_rate(0.5, 8, 2, 0) == 0.0

    def test_monotone_in_nc(self):
        rates = [
            analysis.revocation_detection_rate(0.2, 8, 2, nc)
            for nc in (10, 50, 100, 200)
        ]
        assert rates == sorted(rates)

    def test_monotone_decreasing_in_tau(self):
        rates = [
            analysis.revocation_detection_rate(0.2, 8, tau, 100)
            for tau in (1, 2, 3, 4)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_monotone_in_m(self):
        rates = [
            analysis.revocation_detection_rate(0.1, m, 2, 100)
            for m in (1, 2, 4, 8)
        ]
        assert rates == sorted(rates)

    def test_matches_manual_binomial(self):
        # N_c=3, tau=1: P_d = P[X >= 2] = 3 p^2 (1-p) + p^3.
        p_a = analysis.alert_probability(0.5, 1)
        expected = 3 * p_a**2 * (1 - p_a) + p_a**3
        assert analysis.revocation_detection_rate(0.5, 1, 1, 3) == (
            pytest.approx(expected)
        )


class TestAffected:
    def test_zero_when_fully_detected(self):
        # Huge N_c with tau=0 makes P_d ~ 1 => N' ~ 0... but N' also scales
        # with N_c; check the *residual acceptance* instead.
        assert analysis.residual_acceptance(0.5, 8, 0, 500) < 0.01

    def test_affected_scales_with_population(self):
        small = Population(n_total=1000, n_beacons=110, n_malicious=10)
        n_small = analysis.affected_non_beacons(0.1, 8, 4, 50, small)
        n_paper = analysis.affected_non_beacons(0.1, 8, 4, 50, PAPER_POPULATION)
        # Non-beacon fraction differs slightly; both must be positive.
        assert n_small > 0
        assert n_paper > 0

    def test_worst_case_peaks_then_drops(self):
        """Figure 9's shape: N' rises with N_c, peaks, then declines."""
        values = [
            analysis.worst_case_affected(8, 1, nc, grid=200)[1]
            for nc in (5, 20, 60, 150, 250)
        ]
        peak_index = values.index(max(values))
        assert 0 < peak_index < 4
        assert values[-1] < max(values)

    def test_worst_case_best_p_in_unit_interval(self):
        best_p, _ = analysis.worst_case_affected(8, 2, 100)
        assert 0.0 < best_p <= 1.0

    def test_larger_tau_more_affected(self):
        """Figure 8: N' increases with tau (harder to revoke)."""
        low = analysis.worst_case_affected(8, 1, 100)[1]
        high = analysis.worst_case_affected(8, 4, 100)[1]
        assert high > low

    def test_larger_m_fewer_affected(self):
        """Figure 8: N' decreases with m (easier to detect)."""
        few = analysis.worst_case_affected(2, 2, 100)[1]
        many = analysis.worst_case_affected(8, 2, 100)[1]
        assert many < few


class TestFalsePositives:
    def test_formula(self):
        pop = Population(n_total=10_000, n_beacons=1_010, n_malicious=10)
        # 2*(0.1)*10 = 2 wormhole alerts; 10*3 = 30 collusion alerts;
        # (2+30)/3 per revocation.
        nf = analysis.false_positives_nf(10, 0.9, 2, 2, pop)
        assert nf == pytest.approx(32 / 3)

    def test_perfect_wormhole_detector(self):
        pop = Population(n_total=10_000, n_beacons=1_010, n_malicious=0)
        assert analysis.false_positives_nf(100, 1.0, 2, 2, pop) == 0.0

    def test_decreasing_in_tau_alert(self):
        values = [
            analysis.false_positives_nf(10, 0.9, 2, tau)
            for tau in (1, 2, 4, 8)
        ]
        assert values == sorted(values, reverse=True)

    def test_increasing_in_tau_report(self):
        values = [
            analysis.false_positives_nf(10, 0.9, tr, 2) for tr in (1, 2, 4, 8)
        ]
        assert values == sorted(values)


class TestReportCounterOverflow:
    def _po(self, tau_report, n_c=10):
        return analysis.report_counter_overflow(
            tau_report,
            n_c=n_c,
            m=8,
            p_prime=0.1,
            tau_alert=1,
            n_wormholes=10,
            p_d=0.9,
        )

    def test_decreasing_in_tau_report(self):
        values = [self._po(t) for t in range(6)]
        assert values == sorted(values, reverse=True)

    def test_small_at_tau_two(self):
        """The paper's conclusion: P_o at tau'=2 is close to zero."""
        assert self._po(2) < 0.01

    def test_bounded(self):
        for t in range(5):
            assert 0.0 <= self._po(t) <= 1.0

    def test_increases_with_nc(self):
        assert self._po(1, n_c=20) >= self._po(1, n_c=1)


class TestCollusionFormula:
    def test_expected_revocations(self):
        pop = Population(n_total=1_000, n_beacons=110, n_malicious=10)
        assert analysis.collusion_revocations(2, 2, pop) == pytest.approx(10.0)

    def test_expected_alerts(self):
        val = analysis.expected_alerts_against(0.2, 8, 100)
        p_r = analysis.detection_rate_pr(0.2, 8)
        assert val == pytest.approx(100 * 0.1 * p_r)
