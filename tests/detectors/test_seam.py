"""Seam tests: the detector arena must not move the paper's numbers.

The load-bearing guarantee of the pluggable-detector refactor is that
``detector="paper"`` (the default) is **bit-identical** to the pre-arena
pipeline. The golden table below was captured from the pre-refactor
reply handler across seeds x wormhole on/off and pins every scalar
metric to full float precision; any change to the evaluation order
(e.g. measuring the RTT before the consistency check) burns RNG draws
differently and shows up here immediately.

The remaining tests pin the arena-wide seams: every registered detector
is deterministic under a fixed seed and insensitive to worker count,
rivals run on the scalar path (the vectorized core refuses them), and
fault injection composes with rival detectors deterministically.
"""

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.detectors import available_detectors
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentRunner, collect_metrics
from repro.faults import FaultConfig
from repro.vec import vectorized_core_supported

#: The pre-refactor capture deployment.
SMALL = dict(
    n_total=160,
    n_beacons=24,
    n_malicious=5,
    field_width_ft=500.0,
    field_height_ft=500.0,
    m_detecting_ids=3,
    rtt_calibration_samples=300,
    use_vectorized_core=False,
)

WORMHOLE = ((100.0, 100.0), (400.0, 350.0))

#: (seed, wormhole on) -> (detection_rate, false_positive_rate,
#: affected_non_beacons_per_malicious, revoked_malicious, revoked_benign,
#: alerts_accepted, alerts_rejected, probes_sent,
#: mean_localization_error_ft) — captured from the pre-arena pipeline.
GOLDEN = {
    (0, True): (
        0.2, 0.2631578947368421, 3.4, 1, 5, 21, 0, 396, 441790.56434177246,
    ),
    (0, False): (
        0.2, 0.2631578947368421, 3.0, 1, 5, 21, 0, 312, 21.16977632159902,
    ),
    (1, True): (
        0.0, 0.2631578947368421, 5.8, 0, 5, 17, 0, 357, 69.45578761534301,
    ),
    (1, False): (
        0.0, 0.2631578947368421, 5.4, 0, 5, 17, 0, 285, 15.88618396560365,
    ),
    (7, True): (
        0.2, 0.2631578947368421, 5.2, 1, 5, 21, 0, 411, 9001559.210179534,
    ),
    (7, False): (
        0.2, 0.2631578947368421, 4.0, 1, 5, 20, 0, 282, 65919454.10490332,
    ),
}

GOLDEN_FIELDS = (
    "detection_rate",
    "false_positive_rate",
    "affected_non_beacons_per_malicious",
    "revoked_malicious",
    "revoked_benign",
    "alerts_accepted",
    "alerts_rejected",
    "probes_sent",
    "mean_localization_error_ft",
)

#: Faster deployment for the per-detector determinism sweeps.
TINY = dict(
    n_total=130,
    n_beacons=18,
    n_malicious=4,
    field_width_ft=460.0,
    field_height_ft=460.0,
    p_prime=0.5,
    rtt_calibration_samples=200,
    use_vectorized_core=False,
)


def run_metrics(**kwargs):
    return collect_metrics(
        SecureLocalizationPipeline(PipelineConfig(**kwargs)).run()
    )


class TestPaperBitIdentity:
    @pytest.mark.parametrize("seed,wormhole", sorted(GOLDEN))
    def test_default_pipeline_matches_pre_arena_goldens(self, seed, wormhole):
        config = PipelineConfig(
            seed=seed,
            wormhole_endpoints=WORMHOLE if wormhole else None,
            **SMALL,
        )
        assert config.detector == "paper"
        result = SecureLocalizationPipeline(config).run()
        observed = tuple(
            getattr(result, field) for field in GOLDEN_FIELDS[:-1]
        ) + (result.mean_localization_error_ft,)
        assert observed == GOLDEN[(seed, wormhole)]

    def test_explicit_paper_detector_is_the_default_path(self):
        kwargs = dict(SMALL, seed=0, wormhole_endpoints=WORMHOLE)
        assert run_metrics(detector="paper", **kwargs) == run_metrics(**kwargs)


class TestEveryDetectorDeterministic:
    @pytest.mark.parametrize("name", available_detectors())
    def test_same_seed_same_metrics(self, name):
        kwargs = dict(TINY, detector=name, seed=23)
        assert run_metrics(**kwargs) == run_metrics(**kwargs)

    @pytest.mark.parametrize("name", available_detectors())
    def test_worker_count_cannot_change_results(self, name):
        configs = [
            PipelineConfig(detector=name, seed=31 + i, **TINY)
            for i in range(4)
        ]
        keys = [f"seam:{name}:{c.seed}" for c in configs]

        def run(workers):
            with ExperimentRunner(n_workers=workers) as runner:
                return runner.run_pipeline_configs(configs, keys=keys)

        assert run(1) == run(2)


class TestRivalsStayScalar:
    @pytest.mark.parametrize("name", available_detectors())
    def test_vectorized_core_gate(self, name):
        config = PipelineConfig(detector=name, seed=0, **TINY)
        # The gate may admit only the paper detector (and then only when
        # numpy and the rest of the parity rules allow it).
        if name != "paper":
            assert not vectorized_core_supported(config)

    def test_unknown_detector_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="detector"):
            PipelineConfig(detector="not-a-detector", seed=0, **TINY)


class TestFaultsCompose:
    @pytest.mark.parametrize("name", ["paper", "noisy"])
    def test_faulted_run_is_deterministic_per_detector(self, name):
        faults = FaultConfig(
            packet_loss_rate=0.05,
            rtt_jitter_cycles=200.0,
            node_crash_rate=0.05,
        )
        kwargs = dict(TINY, detector=name, seed=47, faults=faults)
        first = run_metrics(**kwargs)
        assert first == run_metrics(**kwargs)
        # Faults actually engaged: the faulted run differs from clean.
        assert first != run_metrics(**dict(TINY, detector=name, seed=47))
