"""Tests for the pluggable detector arena (repro.detectors)."""
