"""Unit tests for the detector protocol, registry, and rival detectors."""

import random

import pytest

from repro.core.rtt import calibrate_rtt
from repro.detectors import (
    ConsistencyDetector,
    DetectorContext,
    Exchange,
    MahalanobisDetector,
    NoisySequentialDetector,
    Verdict,
    available_detectors,
    make_detector,
)
from repro.detectors.base import register
from repro.errors import CalibrationError, ConfigurationError
from repro.sim.timing import RttModel
from repro.utils.geometry import Point


def make_context(
    max_error_ft=10.0, comm_range_ft=300.0, seed=0, jitter=432.0
):
    model = RttModel(jitter_cycles=jitter)
    calibration = calibrate_rtt(
        model, random.Random(seed), samples=128, distance_ft=comm_range_ft
    )
    return DetectorContext(
        max_ranging_error_ft=max_error_ft,
        comm_range_ft=comm_range_ft,
        rtt_model=model,
        rtt_calibration=calibration,
        rng=random.Random(seed + 1),
    )


def make_exchange(
    declared=Point(100.0, 0.0),
    measured_ft=100.0,
    rtt=16_000.0,
    detector_position=Point(0.0, 0.0),
):
    calls = []

    def rtt_provider():
        calls.append(1)
        return rtt

    exchange = Exchange(
        detector_id=1,
        detecting_id=2,
        target_id=3,
        detector_position=detector_position,
        declared_position=declared,
        measured_distance_ft=measured_ft,
        reception=None,
        rtt_provider=rtt_provider,
    )
    return exchange, calls


class TestRegistry:
    def test_all_detectors_registered_paper_first(self):
        names = available_detectors()
        assert names[0] == "paper"
        assert set(names) == {"paper", "consistency", "mahalanobis", "noisy"}
        assert names[1:] == sorted(names[1:])

    def test_make_detector_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown detector"):
            make_detector("oracle-of-delphi")

    def test_duplicate_registration_rejected(self):
        class Impostor(ConsistencyDetector):
            name = "consistency"

        with pytest.raises(ConfigurationError, match="duplicate"):
            register(Impostor)

    def test_unnamed_registration_rejected(self):
        class Nameless(ConsistencyDetector):
            name = ""

        with pytest.raises(ConfigurationError, match="no registry name"):
            register(Nameless)


class TestVerdictContract:
    def test_indict_requires_alert_decision(self):
        with pytest.raises(ConfigurationError, match="indicting verdicts"):
            Verdict("replayed_local", indict=True, signal_consistent=False)

    def test_consistent_requires_consistent_signal(self):
        with pytest.raises(ConfigurationError, match="signal_consistent"):
            Verdict("consistent", indict=False, signal_consistent=False)

    def test_valid_verdicts_construct(self):
        Verdict("alert", indict=True, signal_consistent=False)
        Verdict("consistent", indict=False, signal_consistent=True)
        Verdict("sequential_pending", indict=False, signal_consistent=False)


class TestExchange:
    def test_rtt_measured_lazily_and_memoized(self):
        exchange, calls = make_exchange(rtt=17_000.0)
        assert calls == []
        assert exchange.rtt_cycles() == 17_000.0
        assert exchange.rtt_cycles() == 17_000.0
        assert len(calls) == 1


class TestConsistencyDetector:
    def test_consistent_signal_accepted_without_rtt(self):
        detector = ConsistencyDetector()
        detector.calibrate(make_context())
        exchange, calls = make_exchange(measured_ft=95.0)  # residual 5 <= 10
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "consistent"
        assert not verdict.indict
        assert calls == []  # the RTT is never measured

    def test_out_of_range_claim_discarded_as_wormhole(self):
        detector = ConsistencyDetector()
        detector.calibrate(make_context(comm_range_ft=300.0))
        exchange, calls = make_exchange(
            declared=Point(400.0, 0.0), measured_ft=100.0
        )
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "replayed_wormhole"
        assert not verdict.indict
        assert calls == []
        assert detector.discarded_out_of_range == 1

    def test_slow_rtt_discarded_as_local_replay(self):
        detector = ConsistencyDetector()
        context = make_context()
        detector.calibrate(context)
        exchange, _ = make_exchange(
            measured_ft=150.0, rtt=context.rtt_calibration.x_max + 1.0
        )
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "replayed_local"
        assert detector.discarded_rtt == 1

    def test_in_range_lie_with_honest_rtt_indicts(self):
        detector = ConsistencyDetector()
        context = make_context()
        detector.calibrate(context)
        exchange, _ = make_exchange(
            measured_ft=150.0, rtt=context.rtt_calibration.x_max - 1.0
        )
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "alert"
        assert verdict.indict


class TestNoisySequentialDetector:
    def test_single_lie_is_pending_not_indicted(self):
        detector = NoisySequentialDetector()
        detector.calibrate(make_context())
        exchange, _ = make_exchange(measured_ft=150.0)
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "sequential_pending"
        assert not verdict.indict

    def test_repeated_lies_cross_the_boundary(self):
        detector = NoisySequentialDetector()
        detector.calibrate(make_context())
        decisions = []
        for _ in range(2):
            exchange, _ = make_exchange(measured_ft=150.0)
            decisions.append(detector.evaluate(exchange).decision)
        # log(0.9/0.05) ~= 2.89 per lie; two lies cross log(99) ~= 4.60.
        assert decisions == ["sequential_pending", "alert"]
        assert detector.indicted_pairs == 1

    def test_clean_observations_clamp_not_drift(self):
        # Many clean observations then lies: the lower clamp means the
        # late-turning malicious beacon still needs only ~2 extra lies.
        detector = NoisySequentialDetector()
        detector.calibrate(make_context())
        for _ in range(50):
            exchange, _ = make_exchange(measured_ft=100.0)
            assert detector.evaluate(exchange).decision == "consistent"
        lies = 0
        while True:
            exchange, _ = make_exchange(measured_ft=150.0)
            lies += 1
            if detector.evaluate(exchange).indict:
                break
        assert lies <= 4

    def test_state_is_per_pair(self):
        detector = NoisySequentialDetector()
        detector.calibrate(make_context())
        for _ in range(2):
            exchange, _ = make_exchange(measured_ft=150.0)
            detector.evaluate(exchange)
        # A different target starts from zero evidence.
        fresh, _ = make_exchange(measured_ft=150.0)
        fresh.target_id = 99
        assert not detector.evaluate(fresh).indict
        assert detector.diagnostics()["pairs_tracked"] == 2

    def test_never_touches_rtt(self):
        detector = NoisySequentialDetector()
        detector.calibrate(make_context())
        exchange, calls = make_exchange(measured_ft=150.0)
        detector.evaluate(exchange)
        assert calls == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NoisySequentialDetector(p_noise=0.9, p_malicious=0.1)
        with pytest.raises(ConfigurationError):
            NoisySequentialDetector(alpha=0.0)


class TestMahalanobisDetector:
    def test_evaluate_before_calibrate_rejected(self):
        detector = MahalanobisDetector()
        exchange, _ = make_exchange()
        with pytest.raises(CalibrationError):
            detector.evaluate(exchange)

    def test_honest_exchange_inside_the_ellipse(self):
        detector = MahalanobisDetector()
        context = make_context(seed=3)
        detector.calibrate(context)
        rtt = context.rtt_model.sample(
            random.Random(9), distance_ft=100.0
        ).rtt
        exchange, _ = make_exchange(measured_ft=96.0, rtt=rtt)
        verdict = detector.evaluate(exchange)
        assert not verdict.indict

    def test_gross_outlier_indicted(self):
        detector = MahalanobisDetector()
        detector.calibrate(make_context(seed=3))
        # A wormhole-sized residual with a tunnel-sized RTT.
        exchange, _ = make_exchange(measured_ft=100.0, rtt=10_000_000.0)
        exchange.declared_position = Point(5_000.0, 0.0)
        verdict = detector.evaluate(exchange)
        assert verdict.decision == "alert"
        assert verdict.indict
        assert detector.outliers == 1

    def test_zero_noise_calibration_is_regularised(self):
        # max_ranging_error_ft=0 collapses the residual axis; the
        # regularised covariance must stay invertible.
        detector = MahalanobisDetector()
        detector.calibrate(make_context(max_error_ft=0.0, seed=4))
        assert detector.threshold_d2 is not None

    def test_calibration_deterministic_in_the_stream(self):
        a, b = MahalanobisDetector(), MahalanobisDetector()
        a.calibrate(make_context(seed=5))
        b.calibrate(make_context(seed=5))
        assert a.threshold_d2 == b.threshold_d2
