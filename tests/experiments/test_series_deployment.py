"""Tests for FigureData/Series containers and deployments."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.deployment import generate_deployment
from repro.experiments.series import FigureData, Series


class TestSeries:
    def test_append_and_points(self):
        s = Series("test")
        s.append(1, 2)
        s.append(3, 4)
        assert s.points() == [(1.0, 2.0), (3.0, 4.0)]

    def test_y_at(self):
        s = Series("test")
        s.append(1, 2)
        assert s.y_at(1) == 2.0
        with pytest.raises(KeyError):
            s.y_at(9)


class TestFigureData:
    def make(self):
        fig = FigureData(
            figure_id="figX", title="t", x_label="x", y_label="y"
        )
        s = fig.new_series("a")
        s.append(1, 10)
        return fig

    def test_new_series_registers(self):
        fig = self.make()
        assert "a" in fig.series

    def test_duplicate_series_rejected(self):
        fig = self.make()
        with pytest.raises(ValueError):
            fig.new_series("a")

    def test_to_rows(self):
        fig = self.make()
        assert fig.to_rows() == [("a", 1.0, 10.0)]

    def test_format_table_contains_data(self):
        fig = self.make()
        fig.notes = "hello-note"
        table = fig.format_table()
        assert "figX" in table
        assert "hello-note" in table
        assert "1.0000" in table


class TestDeployment:
    def test_counts(self):
        d = generate_deployment(
            n_total=100, n_beacons=20, n_malicious=5, seed=1
        )
        assert len(d.benign_beacons) == 15
        assert len(d.malicious_beacons) == 5
        assert len(d.non_beacons) == 80
        assert d.n_total == 100

    def test_within_field(self):
        d = generate_deployment(seed=2)
        for p in d.benign_beacons + d.malicious_beacons + d.non_beacons:
            assert 0 <= p.x <= d.field_width_ft
            assert 0 <= p.y <= d.field_height_ft

    def test_deterministic(self):
        a = generate_deployment(seed=3)
        b = generate_deployment(seed=3)
        assert a.benign_beacons == b.benign_beacons

    def test_seed_changes_layout(self):
        a = generate_deployment(seed=3)
        b = generate_deployment(seed=4)
        assert a.benign_beacons != b.benign_beacons

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_deployment(n_total=10, n_beacons=20)

    def test_density_and_neighbors(self):
        d = generate_deployment(seed=5)
        assert d.beacon_density_per_sqft() == pytest.approx(110 / 1e6)
        # 1000 nodes, range 150: ~70 expected neighbours.
        assert 60 < d.expected_neighbors(150.0) < 80
