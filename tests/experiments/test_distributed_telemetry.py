"""Cross-process trace propagation through the file-queue backend.

The acceptance bar from the live-telemetry plane: an observed queue run
leaves per-process span event logs (coordinator + one per worker) whose
worker roots name the coordinator ``task:*`` span that caused them, all
under one trace id — and ``tools/stitch_trace.py`` folds those logs
(plus a revocation replay's) into a single Perfetto trace with
cross-process flow edges, validated by the same checker CI runs.
"""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

from repro.core.pipeline import PipelineConfig
from repro.experiments.runner import ExperimentRunner
from repro.obs import ObserveConfig, TraceContext

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

#: Small enough for sub-second pipeline runs; still a real deployment.
SMALL = dict(
    n_total=120,
    n_beacons=20,
    n_malicious=2,
    field_width_ft=400.0,
    field_height_ft=400.0,
    m_detecting_ids=2,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
)


def _load_tool(name):
    """Import a tools/ script as a module (they are not a package)."""
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _span_records(path):
    return [
        record
        for record in map(json.loads, path.read_text().splitlines())
        if record.get("kind") == "span"
    ]


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    """One observed 2-worker queue run; (runner, run_dir, results)."""
    queue_dir = tmp_path_factory.mktemp("queue")
    runner = ExperimentRunner(
        backend="queue", n_workers=2, queue_dir=queue_dir, observe=True
    )
    configs = [PipelineConfig(seed=s, **SMALL) for s in (31, 32, 33, 34)]
    results = runner.run_pipeline_configs(configs)
    return runner, next(queue_dir.glob("run-*")), results


class TestQueueEventLogs:
    def test_logs_written_per_process(self, observed_run):
        _, run_dir, _ = observed_run
        assert (run_dir / "coordinator.events.jsonl").exists()
        worker_logs = sorted((run_dir / "workers").glob("*.events.jsonl"))
        assert worker_logs, "observed workers must log their spans"

    def test_worker_roots_link_to_coordinator_spans(self, observed_run):
        runner, run_dir, _ = observed_run
        coordinator_ids = {
            record["id"]
            for record in _span_records(run_dir / "coordinator.events.jsonl")
        }
        assert coordinator_ids  # one task:* span per trial
        roots = []
        for log in (run_dir / "workers").glob("*.events.jsonl"):
            for record in _span_records(log):
                worker = log.name.split(".", 1)[0]
                assert str(record["id"]).startswith(f"{worker}:")
                if record["parent"] == 0:
                    roots.append(record)
        assert len(roots) == 4  # one trial root per config
        for root in roots:
            assert root["trace_id"] == runner.stats.trace_id
            assert root["remote_parent"] in coordinator_ids

    def test_coordinator_spans_share_the_trace_id(self, observed_run):
        runner, run_dir, _ = observed_run
        records = _span_records(run_dir / "coordinator.events.jsonl")
        assert {r["trial"] for r in records} == {"coordinator"}
        assert {r.get("trace_id") for r in records} == {runner.stats.trace_id}

    def test_results_unchanged_by_tracing(self, observed_run):
        _, _, results = observed_run
        configs = [PipelineConfig(seed=s, **SMALL) for s in (31, 32, 33, 34)]
        assert ExperimentRunner().run_pipeline_configs(configs) == results


class TestSpanIdUniqueness:
    def test_four_worker_fleet_never_reuses_a_span_id(self, tmp_path):
        # Regression: per-trial serial counters once restarted at 1 for
        # every task, so two trials on one worker both minted "w0:1".
        runner = ExperimentRunner(
            backend="queue", n_workers=4, queue_dir=tmp_path, observe=True
        )
        configs = [PipelineConfig(seed=s, **SMALL) for s in range(41, 49)]
        runner.run_pipeline_configs(configs)
        run_dir = next(tmp_path.glob("run-*"))
        ids = []
        for log in (run_dir / "workers").glob("*.events.jsonl"):
            ids.extend(record["id"] for record in _span_records(log))
        assert ids and len(ids) == len(set(ids))


class TestStitchedTrace:
    @pytest.fixture(scope="class")
    def revocation_log(self, observed_run, tmp_path_factory):
        """A revocation replay joined to the queue run's trace."""
        from repro.revocation import capture_stream, replay_stream

        runner, _, _ = observed_run
        events_log = tmp_path_factory.mktemp("svc") / "revocation.events.jsonl"
        stream = capture_stream(
            PipelineConfig(seed=31, **{**SMALL, "n_malicious": 4})
        )
        report = replay_stream(
            stream,
            observe=ObserveConfig(),
            events_log=events_log,
            trace_context=TraceContext(
                trace_id=runner.stats.trace_id, parent_span_id="coord:1"
            ),
        )
        assert report.identical
        return events_log

    def test_one_trace_with_cross_process_edges(
        self, observed_run, revocation_log, tmp_path
    ):
        runner, run_dir, _ = observed_run
        stitch_trace = _load_tool("stitch_trace")
        problems = []
        paths = stitch_trace.collect_run_dir(run_dir) + [revocation_log]
        spans = stitch_trace.load_span_lines(paths, problems)
        document = stitch_trace.stitch(spans, problems)
        assert problems == []
        summary = document["stitchSummary"]
        assert summary["trace_ids"] == [runner.stats.trace_id]
        assert "coord" in summary["processes"]
        assert "svc" in summary["processes"]
        assert any(p.startswith("w") for p in summary["processes"])
        # Every remote-parented root became one s->f flow pair.
        roots = [s for s in spans if s.get("remote_parent")]
        assert summary["edges"] == len(roots) >= 5
        flows = [e for e in document["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2 * summary["edges"]

        # The stitched artifact satisfies the CI telemetry checker.
        out = tmp_path / "stitched.json"
        out.write_text(json.dumps(document))
        check = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_telemetry.py"),
                "--chrome",
                str(out),
            ],
            capture_output=True,
            text=True,
        )
        assert check.returncode == 0, check.stdout + check.stderr

    def test_missing_parent_log_is_an_error_unless_allowed(
        self, observed_run
    ):
        _, run_dir, _ = observed_run
        stitch_trace = _load_tool("stitch_trace")
        worker_logs = sorted((run_dir / "workers").glob("*.events.jsonl"))
        problems = []
        spans = stitch_trace.load_span_lines(worker_logs, problems)
        stitch_trace.stitch(spans, problems)
        assert any("remote parent" in p for p in problems)
        lenient = []
        document = stitch_trace.stitch(spans, lenient, allow_dangling=True)
        assert lenient == []
        assert document["stitchSummary"]["edges"] == 0

    def test_cli_end_to_end(self, observed_run, revocation_log, tmp_path):
        _, run_dir, _ = observed_run
        out = tmp_path / "stitched.json"
        check = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "stitch_trace.py"),
                "--run-dir",
                str(run_dir),
                str(revocation_log),
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
        )
        assert check.returncode == 0, check.stdout + check.stderr
        assert "cross-process edge(s)" in check.stdout
        assert json.loads(out.read_text())["traceEvents"]


class TestTelemetryCli:
    def test_telemetry_port_flag_reaches_runner(self):
        from repro.experiments.cli import build_parser, make_runner

        args = build_parser().parse_args(
            ["figure05", "--telemetry-port", "0"]
        )
        with make_runner(args) as runner:
            assert runner.telemetry_server is not None
            assert runner.telemetry_server.port > 0
        assert runner.telemetry_server is None  # close() stopped it

    def test_telemetry_off_by_default(self):
        from repro.experiments.cli import build_parser, make_runner

        args = build_parser().parse_args(["figure05"])
        with make_runner(args) as runner:
            assert runner.telemetry_server is None
