"""Tests for the distributed file-queue execution backend.

The acceptance bar mirrors the pool backend's: queue results are
bit-identical to serial for any worker count, in input order, including
after an injected worker crash under ``keep_going`` — with the crashed
task re-queued exactly once and never double-counted in the merged
telemetry. Also covers the shared result store (atomic concurrent
writers, exclusive claims) and the standalone-worker CLI plumbing.
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.experiments.distributed import (
    CRASH_EXIT_CODE,
    MAX_REQUEUES,
    WORKER_LOST_ERROR,
    _b64_pickle,
    _b64_unpickle,
    _QueueLayout,
    _try_claim,
    allocate_run_dir,
)
from repro.experiments.runner import ExperimentRunner, ResultCache, cache_key

#: Small enough for sub-second pipeline runs; still a real deployment.
SMALL = dict(
    n_total=120,
    n_beacons=20,
    n_malicious=2,
    field_width_ft=400.0,
    field_height_ft=400.0,
    m_detecting_ids=2,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
)


def _square(x):
    """Module-level (hence picklable) toy task."""
    return x * x


def _boom(x):
    """Toy task that fails on one specific payload."""
    if x == 2:
        raise ValueError("boom")
    return x * x


def _cache_writer(args):
    """One concurrent-writer process: hammer the same cache key."""
    root, key, value, rounds = args
    cache = ResultCache(root)
    for _ in range(rounds):
        cache.put(key, value)
    return True


def _claim_once(args):
    """One contender for an exclusive cache claim."""
    root, key = args
    return ResultCache(root).claim(key)


class TestConfigValidation:
    def test_backend_and_lease_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(backend="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            ExperimentRunner(backend="queue", lease_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner(backend="queue", lease_timeout_s=-1)

    def test_pickle_roundtrip_helpers(self):
        payload = {"config": PipelineConfig(seed=1, **SMALL), "n": 3}
        assert _b64_unpickle(_b64_pickle(payload)) == payload


class TestQueueIdentity:
    """Queue output is bit-identical to serial for any worker count."""

    PAYLOADS = [7, 1, 5, 3, 9, 2]

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_map_matches_serial_in_input_order(self, tmp_path, n_workers):
        serial = ExperimentRunner().map(_square, self.PAYLOADS)
        runner = ExperimentRunner(
            backend="queue", n_workers=n_workers, queue_dir=tmp_path
        )
        assert runner.map(_square, self.PAYLOADS) == serial
        assert serial == [_square(p) for p in self.PAYLOADS]
        assert runner.stats.executed == len(self.PAYLOADS)
        # Every claim became exactly one completion across the fleet.
        counters = runner.stats.worker_registry()["counters"]
        completed = sum(
            v
            for k, v in counters.items()
            if k.startswith("queue_worker_completed_total")
        )
        assert completed == len(self.PAYLOADS)

    def test_pipeline_trials_match_serial(self, tmp_path):
        configs = [PipelineConfig(seed=s, **SMALL) for s in (5, 6, 7)]
        serial = ExperimentRunner().run_pipeline_configs(configs)
        runner = ExperimentRunner(
            backend="queue", n_workers=2, queue_dir=tmp_path
        )
        assert runner.run_pipeline_configs(configs) == serial
        assert runner.stats.executed == 3
        assert runner.stats.requeues == 0
        assert len(runner.stats.worker_snapshots) >= 1

    def test_task_failure_keep_going_matches_pool_semantics(self, tmp_path):
        runner = ExperimentRunner(
            backend="queue", n_workers=2, queue_dir=tmp_path, keep_going=True
        )
        results = runner.map(_boom, [1, 2, 3])
        assert results == [1, None, 9]
        assert [e.error_type for e in runner.stats.errors] == ["ValueError"]
        assert runner.stats.errors[0].index == 1


class TestQueueFailureModel:
    """Crash injection: the lost trial is re-queued, results unchanged."""

    def test_killed_worker_trial_requeued_exactly_once(self, tmp_path):
        configs = [PipelineConfig(seed=s, **SMALL) for s in (11, 12, 13, 14)]
        serial = ExperimentRunner(observe=True)
        expected = serial.run_pipeline_configs(configs)

        runner = ExperimentRunner(
            backend="queue",
            n_workers=2,
            queue_dir=tmp_path,
            keep_going=True,
            observe=True,
            lease_timeout_s=20.0,
            queue_crash_after={0: 1},  # worker w0 dies on its first claim
        )
        assert runner.run_pipeline_configs(configs) == expected
        assert runner.stats.requeues == 1
        assert runner.stats.errors == []
        # No double-count anywhere: per-trial telemetry merged across the
        # fleet is bit-identical to the serial runner's.
        assert runner.stats.merged_registry() == serial.stats.merged_registry()
        # And the fleet completed each task exactly once, despite the
        # crashed claim.
        counters = runner.stats.worker_registry()["counters"]
        completed = sum(
            v
            for k, v in counters.items()
            if k.startswith("queue_worker_completed_total")
        )
        assert completed == len(configs)
        # The crashed worker's subprocess really died with the injected
        # exit code (its summary never appeared; a replacement or the
        # surviving worker drained its shard).
        run_dir = next(tmp_path.glob("run-*"))
        assert not (run_dir / "workers" / "w0.json").exists()
        assert CRASH_EXIT_CODE == 17

    def test_all_workers_dead_still_terminates(self, tmp_path):
        # The only spawned worker crashes immediately; the coordinator
        # must field a replacement (or run inline) and still finish with
        # correct results rather than hang.
        runner = ExperimentRunner(
            backend="queue",
            n_workers=1,
            queue_dir=tmp_path,
            keep_going=True,
            queue_crash_after={0: 1},
        )
        assert runner.map(_square, [4, 6]) == [16, 36]
        assert runner.stats.requeues >= 1
        assert runner.stats.errors == []

    def test_exhausted_requeues_synthesize_worker_lost_error(self):
        from repro.experiments.distributed import _synthesize_lost

        ok, value, seconds, attempts = _synthesize_lost("task:3", MAX_REQUEUES + 1)
        assert not ok
        error_type, message, traceback_text, phase = value
        assert error_type == WORKER_LOST_ERROR
        assert str(MAX_REQUEUES) in message and "task:3" in traceback_text
        assert attempts == MAX_REQUEUES + 1 and phase == ""


class TestQueueSharedStore:
    """The cache as a multi-writer shared result store."""

    def test_queue_populates_shared_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        configs = [PipelineConfig(seed=s, **SMALL) for s in (21, 22)]
        runner = ExperimentRunner(
            backend="queue",
            n_workers=2,
            queue_dir=tmp_path / "queue",
            cache_dir=cache_dir,
        )
        first = runner.run_pipeline_configs(configs)
        assert runner.stats.cache_misses == 2

        warm = ExperimentRunner(cache_dir=cache_dir)
        assert warm.run_pipeline_configs(configs) == first
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 2

    def test_claim_is_exclusive_and_releasable(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("k")
        assert not cache.claim("k")
        assert not ResultCache(tmp_path).claim("k")
        cache.release("k")
        assert cache.claim("k")
        cache.release("k")
        cache.release("k")  # idempotent

    def test_claim_exclusive_across_processes(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            wins = pool.map(_claim_once, [(str(tmp_path), "key")] * 4)
        assert sum(wins) == 1

    def test_concurrent_writers_leave_a_valid_entry(self, tmp_path):
        # Regression: pre-atomic-rename puts could interleave two
        # writers' tmp files and leave a torn entry. Hammer one key from
        # several processes and require a clean, correct read afterward.
        value = {"detection_rate": 0.25, "probes_sent": 40.0}
        ctx = multiprocessing.get_context("spawn")
        args = [(str(tmp_path), "shared", value, 25)] * 4
        with ctx.Pool(4) as pool:
            assert all(pool.map(_cache_writer, args))
        cache = ResultCache(tmp_path)
        assert cache.get("shared") == value
        entry = json.loads(cache.path("shared").read_text())
        assert entry["metrics"] == value
        # No tmp droppings survive the renames.
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_put_failure_cleans_up_tmp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            cache.put("k", {"x": 1.0})
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp.*")) == []
        assert cache.get("k") is None


class TestQueueProtocol:
    """Low-level protocol pieces: run allocation and lease claims."""

    def test_allocate_run_dir_is_collision_free(self, tmp_path):
        first = allocate_run_dir(tmp_path)
        second = allocate_run_dir(tmp_path)
        assert first != second
        assert first.name.startswith("run-") and second.name.startswith("run-")

    def test_try_claim_single_winner(self, tmp_path):
        layout = _QueueLayout(tmp_path)
        layout.create()
        assert _try_claim(layout, "000001", "w0")
        assert not _try_claim(layout, "000001", "w1")
        owner = json.loads(layout.lease_path("000001").read_text())
        assert owner["worker"] == "w0" and owner["pid"] == os.getpid()

    def test_manifest_payloads_pickle_roundtrip(self):
        config = PipelineConfig(seed=3, **SMALL)
        assert pickle.loads(pickle.dumps(config)) == config
        assert cache_key(config) == cache_key(PipelineConfig(seed=3, **SMALL))


class TestWorkerCli:
    def test_runner_cli_accepts_queue_flags(self):
        from repro.experiments.cli import build_parser, make_runner

        args = build_parser().parse_args(
            [
                "figure05",
                "--backend",
                "queue",
                "--workers",
                "3",
                "--queue-dir",
                "/tmp/q",
                "--lease-timeout",
                "12.5",
            ]
        )
        runner = make_runner(args)
        assert runner.backend == "queue"
        assert runner.n_workers == 3
        assert str(runner.queue_dir) == "/tmp/q"
        assert runner.lease_timeout_s == 12.5

    def test_worker_mode_requires_no_target(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["--worker", "/tmp/q", "--once"])
        assert str(args.worker) == "/tmp/q" and args.target is None
