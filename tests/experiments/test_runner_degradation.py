"""Graceful degradation of the experiment runner under task failures."""

import json

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.montecarlo import run_trials
from repro.experiments.runner import ExperimentRunner, TrialError


def flaky_task(x):
    """Module-level (picklable) task that fails on one input."""
    if x == 2:
        raise ValueError(f"injected failure at {x}")
    return x * 10


def flaky_experiment(seed):
    """Picklable experiment failing on even trial seeds."""
    if seed % 2 == 0:
        raise RuntimeError("injected failure on even seed")
    return {"metric": float(seed)}


class TestFailFast:
    def test_default_raises_with_worker_context(self):
        runner = ExperimentRunner()
        with pytest.raises(ExperimentError) as excinfo:
            runner.map(flaky_task, [1, 2, 3])
        text = str(excinfo.value)
        assert "ValueError" in text
        assert "injected failure at 2" in text
        assert "worker traceback" in text

    def test_parallel_also_raises(self):
        runner = ExperimentRunner(n_workers=2)
        with pytest.raises(ExperimentError):
            runner.map(flaky_task, [1, 2, 3, 4])


class TestKeepGoing:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_failure_mid_sweep_keeps_other_trials(self, n_workers):
        runner = ExperimentRunner(n_workers=n_workers, keep_going=True)
        results = runner.map(flaky_task, [1, 2, 3, 4])
        # The failed slot degrades to None; every other trial completed.
        assert results == [10, None, 30, 40]
        assert runner.stats.failed == 1
        [record] = runner.stats.errors
        assert isinstance(record, TrialError)
        assert record.index == 1
        assert record.key == "task:1"
        assert record.error_type == "ValueError"
        assert "injected failure at 2" in record.message
        assert "flaky_task" in record.traceback_text
        assert record.attempts == 1

    def test_error_record_serializes(self):
        runner = ExperimentRunner(keep_going=True)
        runner.map(flaky_task, [2])
        payload = json.dumps([e.to_dict() for e in runner.stats.errors])
        assert "injected failure" in payload

    def test_progress_reports_failure(self):
        events = []
        runner = ExperimentRunner(keep_going=True, progress=events.append)
        runner.map(flaky_task, [1, 2])
        assert [e.ok for e in events] == [True, False]

    def test_retries_counted(self):
        runner = ExperimentRunner(keep_going=True, task_retries=2)
        runner.map(flaky_task, [2])
        assert runner.stats.errors[0].attempts == 3

    def test_invalid_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(task_retries=-1)


class TestRunTrialsDegradation:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_partial_aggregation(self, n_workers):
        runner = ExperimentRunner(n_workers=n_workers, keep_going=True)
        summaries = run_trials(
            flaky_experiment, trials=8, base_seed=1, runner=runner
        )
        failed = runner.stats.failed
        assert 0 < failed < 8
        assert summaries["metric"].n == 8 - failed

    def test_all_failed_raises(self):
        runner = ExperimentRunner(keep_going=True)
        with pytest.raises(ConfigurationError, match="failed"):
            run_trials(
                lambda seed: (_ for _ in ()).throw(RuntimeError("always")),
                trials=2,
                runner=runner,
            )


class TestKeepGoingCaching:
    def test_failed_pipeline_tasks_not_cached(self, tmp_path):
        # An impossible budget makes every pipeline raise; nothing may be
        # written back as a cached "result".
        from repro.core.pipeline import PipelineConfig

        config = PipelineConfig(
            n_total=60,
            n_beacons=12,
            n_malicious=2,
            rtt_calibration_samples=200,
            wormhole_endpoints=None,
            max_events=1,
        )
        runner = ExperimentRunner(keep_going=True, cache_dir=tmp_path)
        results = runner.run_pipeline_configs([config])
        assert results == [None]
        assert runner.stats.failed == 1
        assert runner.stats.errors[0].error_type == "BudgetExceededError"
        assert list(tmp_path.glob("*.json")) == []
