"""Runner-level observability: merged registries, spans, errors, cache.

The headline property: the merged registry of a parallel run equals the
merged registry of a serial run *exactly* (JSON-identical), for any
worker count — wall-clock never leaks into the mergeable registry, and
``merge_snapshots`` is order-insensitive.
"""

import dataclasses
import json

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.experiments.runner import (
    ExperimentRunner,
    ResultCache,
    cache_key,
)
from repro.errors import ConfigurationError
from repro.obs import ObserveConfig


def small_config(**overrides):
    """A scaled-down deployment that keeps tests fast."""
    defaults = dict(
        n_total=220,
        n_beacons=40,
        n_malicious=4,
        field_width_ft=500.0,
        field_height_ft=500.0,
        m_detecting_ids=4,
        rtt_calibration_samples=500,
        wormhole_endpoints=((50.0, 50.0), (400.0, 350.0)),
        seed=5,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


CONFIGS = [small_config(seed=seed) for seed in (5, 6, 7, 8)]
KEYS = [f"seed{seed}" for seed in (5, 6, 7, 8)]


class TestMergedRegistryParallelEqualsSerial:
    def test_two_workers_match_serial_exactly(self):
        serial = ExperimentRunner(n_workers=1, observe=True)
        serial_results = serial.run_pipeline_configs(CONFIGS, keys=KEYS)
        parallel = ExperimentRunner(n_workers=2, observe=ObserveConfig())
        parallel_results = parallel.run_pipeline_configs(CONFIGS, keys=KEYS)

        assert parallel_results == serial_results
        serial_merged = serial.stats.merged_registry()
        parallel_merged = parallel.stats.merged_registry()
        assert json.dumps(serial_merged, sort_keys=True) == json.dumps(
            parallel_merged, sort_keys=True
        )

    def test_merged_registry_sums_trials(self):
        runner = ExperimentRunner(observe=True)
        runner.run_pipeline_configs(CONFIGS[:2], keys=KEYS[:2])
        merged = runner.stats.merged_registry()

        total = 0
        for config in CONFIGS[:2]:
            pipeline = SecureLocalizationPipeline(
                dataclasses.replace(config, observe=ObserveConfig())
            )
            pipeline.run()
            total += pipeline.telemetry()["registry"]["counters"][
                "probes_sent_total"
            ]
        assert merged["counters"]["probes_sent_total"] == total

    def test_telemetry_entries_in_input_order(self):
        runner = ExperimentRunner(n_workers=2, observe=True)
        runner.run_pipeline_configs(CONFIGS, keys=KEYS)
        assert [t["key"] for t in runner.stats.telemetry] == KEYS
        assert [t["index"] for t in runner.stats.telemetry] == [0, 1, 2, 3]

    def test_run_spans_cover_every_task(self):
        runner = ExperimentRunner(observe=True)
        runner.run_pipeline_configs(CONFIGS[:2], keys=KEYS[:2])
        names = [span["name"] for span in runner.stats.run_spans]
        assert names == ["task:seed5", "task:seed6"]
        for span in runner.stats.run_spans:
            assert span["dur_wall_s"] >= 0.0
            assert span["attrs"]["ok"] is True


class TestUnobservedRunner:
    def test_no_telemetry_collected(self):
        runner = ExperimentRunner()
        results = runner.run_pipeline_configs(CONFIGS[:1], keys=KEYS[:1])
        assert results[0]
        assert runner.stats.telemetry == []
        assert runner.stats.run_spans == []
        assert runner.stats.merged_registry() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_observe_flag_validation(self):
        assert ExperimentRunner(observe=True).observe == ObserveConfig()
        assert ExperimentRunner(observe=False).observe is None
        with pytest.raises(ConfigurationError):
            ExperimentRunner(observe="yes")


class TestErrorPhaseAttribution:
    def test_trial_error_carries_active_span(self):
        # A tiny event budget blows up inside the detection phase.
        runner = ExperimentRunner(observe=True, keep_going=True)
        runner.run_pipeline_configs(
            [small_config(max_events=50)], keys=["budget"]
        )
        assert len(runner.stats.errors) == 1
        record = runner.stats.errors[0]
        assert record.error_type == "BudgetExceededError"
        assert record.phase == "phase:detection"
        assert record.to_dict()["phase"] == "phase:detection"

    def test_profile_tagging_is_the_unobserved_fallback(self):
        runner = ExperimentRunner(profile=True, keep_going=True)
        runner.run_pipeline_configs(
            [small_config(max_events=50)], keys=["budget"]
        )
        assert runner.stats.errors[0].phase == "detection"


class TestCacheInteraction:
    def test_observe_not_part_of_cache_key(self):
        plain = small_config()
        observed = dataclasses.replace(plain, observe=ObserveConfig())
        assert cache_key(plain) == cache_key(observed)

    def test_seed_is_part_of_cache_key(self):
        assert cache_key(small_config(seed=5)) != cache_key(
            small_config(seed=6)
        )

    def test_telemetry_stored_as_entry_metadata(self, tmp_path):
        runner = ExperimentRunner(observe=True, cache_dir=tmp_path)
        results = runner.run_pipeline_configs(CONFIGS[:1], keys=KEYS[:1])
        key = cache_key(CONFIGS[0])
        entry = json.loads(ResultCache(tmp_path).path(key).read_text())
        assert "registry" in entry["telemetry"]
        assert (
            entry["telemetry"]["registry"]["counters"]["probes_sent_total"]
            > 0
        )

        # A fresh unobserved runner reads the same entry: metrics only.
        reader = ExperimentRunner(cache_dir=tmp_path)
        cached = reader.run_pipeline_configs(CONFIGS[:1], keys=KEYS[:1])
        assert cached == results
        assert reader.stats.cache_hits == 1
        assert reader.stats.telemetry == []
