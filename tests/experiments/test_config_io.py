"""Tests for experiment-config manifests."""

import json

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.errors import ConfigurationError
from repro.experiments.config_io import (
    SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    load_manifest,
    save_manifest,
)


class TestRoundTrip:
    def test_default_config(self):
        cfg = PipelineConfig()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_customized_config(self):
        cfg = PipelineConfig(
            p_prime=0.37,
            n_total=512,
            n_beacons=64,
            n_malicious=7,
            wormhole_endpoints=((1.0, 2.0), (3.0, 4.0)),
            revocation_dissemination="flood",
            seed=999,
        )
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_no_wormhole(self):
        cfg = PipelineConfig(wormhole_endpoints=None)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_unknown_key_rejected(self):
        data = config_to_dict(PipelineConfig())
        data["banana"] = 1
        with pytest.raises(ConfigurationError, match="banana"):
            config_from_dict(data)

    def test_invalid_value_rejected_on_load(self):
        data = config_to_dict(PipelineConfig())
        data["p_prime"] = 2.0
        with pytest.raises(ConfigurationError):
            config_from_dict(data)


class TestManifestFiles:
    def test_save_and_load(self, tmp_path):
        cfg = PipelineConfig(p_prime=0.11, seed=42)
        path = save_manifest(cfg, tmp_path / "exp" / "run.json", note="hello")
        assert load_manifest(path) == cfg
        raw = json.loads(path.read_text())
        assert raw["schema"] == SCHEMA_VERSION
        assert raw["note"] == "hello"
        assert raw["library_version"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_manifest(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_manifest(bad)

    def test_wrong_schema(self, tmp_path):
        cfg = PipelineConfig()
        path = save_manifest(cfg, tmp_path / "run.json")
        raw = json.loads(path.read_text())
        raw["schema"] = 999
        path.write_text(json.dumps(raw))
        with pytest.raises(ConfigurationError):
            load_manifest(path)

    def test_missing_config_section(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ConfigurationError):
            load_manifest(path)


class TestManifestReproducibility:
    def test_loaded_config_reproduces_run(self, tmp_path):
        cfg = PipelineConfig(
            n_total=150,
            n_beacons=24,
            n_malicious=3,
            field_width_ft=400.0,
            field_height_ft=400.0,
            p_prime=0.5,
            rtt_calibration_samples=300,
            wormhole_endpoints=None,
            seed=31,
        )
        path = save_manifest(cfg, tmp_path / "run.json")
        first = SecureLocalizationPipeline(cfg).run()
        second = SecureLocalizationPipeline(load_manifest(path)).run()
        assert first.detection_rate == second.detection_rate
        assert first.revoked_benign == second.revoked_benign
        assert first.affected_non_beacons_per_malicious == (
            second.affected_non_beacons_per_malicious
        )
