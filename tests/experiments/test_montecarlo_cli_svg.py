"""Tests for the Monte-Carlo runner, the CLI, and SVG rendering."""

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figures
from repro.experiments.cli import main
from repro.experiments.montecarlo import TrialSummary, run_trials, summarize
from repro.experiments.series import FigureData
from repro.experiments.svgplot import render_svg, save_svg


class TestSummarize:
    def test_mean_and_interval(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.low < 2.5 < s.high
        assert s.n == 4

    def test_single_trial_infinite_interval(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.half_width == float("inf")

    def test_constant_sample_zero_width(self):
        s = summarize([3.0] * 10)
        assert s.half_width == 0.0
        assert s.contains(3.0)
        assert not s.contains(3.1)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert summarize(values, level=0.99).half_width > summarize(
            values, level=0.90
        ).half_width

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_unsupported_level_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([1.0, 2.0], level=0.5)


class TestRunTrials:
    def test_aggregates_metrics(self):
        def experiment(seed):
            return {"a": seed % 7, "b": 1.0}

        summaries = run_trials(experiment, trials=20, base_seed=3)
        assert set(summaries) == {"a", "b"}
        assert summaries["b"].mean == 1.0
        assert summaries["b"].half_width == 0.0

    def test_deterministic_in_base_seed(self):
        def experiment(seed):
            return {"x": (seed * 2654435761) % 1000}

        a = run_trials(experiment, trials=5, base_seed=1)["x"].mean
        b = run_trials(experiment, trials=5, base_seed=1)["x"].mean
        c = run_trials(experiment, trials=5, base_seed=2)["x"].mean
        assert a == b
        assert a != c

    def test_seeds_distinct_across_trials(self):
        seen = []

        def experiment(seed):
            seen.append(seed)
            return {"x": 0.0}

        run_trials(experiment, trials=10, base_seed=0)
        assert len(set(seen)) == 10

    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            run_trials(lambda s: {}, trials=0)

    def test_undefined_metrics_excluded_from_mean(self):
        # An experiment omits a metric on some trials (the pipeline does
        # this for undefined rates, e.g. detection_rate with zero
        # malicious beacons). The mean must be over defined trials only —
        # not dragged toward zero by the undefined ones.
        def experiment(seed):
            metrics = {"always": 0.5}
            if seed % 2 == 0:
                metrics["sometimes"] = 1.0
            return metrics

        summaries = run_trials(experiment, trials=20, base_seed=3)
        assert summaries["always"].n == 20
        assert 0 < summaries["sometimes"].n < 20
        assert summaries["sometimes"].mean == 1.0

    def test_ci_covers_true_mean_of_coin(self):
        import random

        def experiment(seed):
            rng = random.Random(seed)
            return {"heads": sum(rng.random() < 0.5 for _ in range(200)) / 200}

        summary = run_trials(experiment, trials=30, base_seed=7)["heads"]
        assert summary.contains(0.5)


class TestSvg:
    def make_fig(self):
        fig = FigureData(
            figure_id="figX", title="T", x_label="x", y_label="y"
        )
        s = fig.new_series("curve-a")
        for i in range(5):
            s.append(i, i * i)
        t = fig.new_series("curve-b")
        for i in range(5):
            t.append(i, 2 * i)
        return fig

    def test_render_is_valid_ish_svg(self):
        svg = render_svg(self.make_fig())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "polyline" in svg
        assert "curve-a" in svg and "curve-b" in svg

    def test_scatter_mode_uses_circles(self):
        svg = render_svg(self.make_fig(), scatter=True)
        assert "circle" in svg
        assert "polyline" not in svg

    def test_escapes_labels(self):
        fig = FigureData(
            figure_id="f", title="a<b&c", x_label="x", y_label="y"
        )
        fig.new_series("s").append(0, 0)
        svg = render_svg(fig)
        assert "a&lt;b&amp;c" in svg

    def test_empty_figure_rejected(self):
        fig = FigureData(figure_id="f", title="t", x_label="x", y_label="y")
        with pytest.raises(ConfigurationError):
            render_svg(fig)

    def test_save_svg_writes_file(self, tmp_path):
        path = save_svg(self.make_fig(), str(tmp_path / "fig.svg"))
        assert pathlib.Path(path).read_text().startswith("<svg")

    def test_render_real_figure(self):
        svg = render_svg(figures.figure05_detection_vs_pprime())
        assert svg.count("polyline") == 4


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure05" in out
        assert "figure14" in out

    def test_single_figure_table(self, capsys):
        assert main(["figure05"]) == 0
        out = capsys.readouterr().out
        assert "figure05" in out
        assert "m=8" in out

    def test_unknown_target(self, capsys):
        assert main(["figure99"]) == 2

    def test_out_directory_and_svg(self, tmp_path, capsys):
        code = main(
            ["figure05", "--out", str(tmp_path), "--svg", "--quiet"]
        )
        assert code == 0
        assert (tmp_path / "figure05.txt").exists()
        assert (tmp_path / "figure05.svg").exists()
        assert capsys.readouterr().out == ""

    def test_profile_flag_emits_json(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.core.pipeline import PipelineConfig
        from repro.experiments import figures as figures_module
        from repro.experiments.series import FigureData

        def generator(runner):
            """Tiny simulation-backed fake figure."""
            config = PipelineConfig(
                n_total=60,
                n_beacons=10,
                n_malicious=1,
                field_width_ft=300.0,
                field_height_ft=300.0,
                m_detecting_ids=1,
                rtt_calibration_samples=100,
                wormhole_endpoints=None,
                seed=3,
            )
            metrics = runner.run_pipeline_configs([config], keys=["pt"])[0]
            fig = FigureData(
                figure_id="figure97", title="t", x_label="x", y_label="y"
            )
            fig.new_series("s").append(0, metrics["detection_rate"])
            return fig

        monkeypatch.setattr(
            figures_module, "ALL_FIGURES", {"figure97": generator}
        )
        code = main(
            ["figure97", "--profile", "--out", str(tmp_path), "--quiet"]
        )
        assert code == 0
        payload = json.loads((tmp_path / "profile.json").read_text())
        assert payload["trials"] == 1
        assert "detection" in payload["phases"]
        assert payload["counters"]["spatial_queries"] > 0
        # --quiet suppressed the stdout copy.
        assert capsys.readouterr().out == ""

    def test_all_target_runs_every_generator(self, tmp_path, monkeypatch):
        from repro.experiments import figures as figures_module
        from repro.experiments.series import FigureData

        calls = []

        def fake(name):
            def generator():
                calls.append(name)
                fig = FigureData(
                    figure_id=name, title=name, x_label="x", y_label="y"
                )
                fig.new_series("s").append(0, 0)
                return fig

            return generator

        monkeypatch.setattr(
            figures_module,
            "ALL_FIGURES",
            {"figure98": fake("figure98"), "figure99": fake("figure99")},
        )
        code = main(["all", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        assert calls == ["figure98", "figure99"]
        assert (tmp_path / "figure98.txt").exists()
        assert (tmp_path / "figure99.txt").exists()
