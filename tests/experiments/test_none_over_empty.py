"""The None-over-empty rate contract, end to end.

An undefined rate (detection rate with no malicious beacons, FP rate
with no benign beacons) must surface as ``None`` — never be coerced to
0 — at every layer it crosses: the pipeline result, the flattened
metric dict, the Monte-Carlo aggregation, the distributed queue
backend's merged results, and finally the arena report, which renders
it as "n/a". Each layer gets its own regression test here so a
future "helpful" ``or 0.0`` anywhere on the path fails loudly.
"""

import pytest

from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    SecureLocalizationPipeline,
)
from repro.errors import ConfigurationError
from repro.experiments.arena import _fmt, arena_headlines, render_arena_markdown
from repro.experiments.montecarlo import run_trials
from repro.experiments.runner import (
    ExperimentRunner,
    PipelineExperiment,
    collect_metrics,
)

#: Small, fast deployment with no malicious beacons at all.
NO_MALICIOUS = dict(
    n_total=120,
    n_beacons=16,
    n_malicious=0,
    field_width_ft=420.0,
    field_height_ft=420.0,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
)


class TestPipelineLayer:
    def test_zero_malicious_detection_rate_is_none(self):
        result = SecureLocalizationPipeline(
            PipelineConfig(seed=11, **NO_MALICIOUS)
        ).run()
        assert result.detection_rate is None
        assert result.false_positive_rate == 0.0

    def test_all_malicious_false_positive_rate_is_none(self):
        config = PipelineConfig(
            seed=12, **{**NO_MALICIOUS, "n_beacons": 8, "n_malicious": 8}
        )
        result = SecureLocalizationPipeline(config).run()
        assert result.false_positive_rate is None
        # With no benign beacon to detect anything, the defined rate is 0.
        assert result.detection_rate == 0.0


class TestMetricDictLayer:
    def test_collect_metrics_omits_undefined_rates(self):
        result = PipelineResult(
            detection_rate=None,
            false_positive_rate=None,
            affected_non_beacons_per_malicious=0.0,
            revoked_malicious=0,
            revoked_benign=0,
            alerts_accepted=0,
            alerts_rejected=0,
            probes_sent=5,
        )
        metrics = collect_metrics(result)
        assert "detection_rate" not in metrics
        assert "false_positive_rate" not in metrics
        assert metrics["probes_sent"] == 5.0

    def test_defined_zero_is_kept(self):
        result = PipelineResult(
            detection_rate=0.0,
            false_positive_rate=0.0,
            affected_non_beacons_per_malicious=0.0,
            revoked_malicious=0,
            revoked_benign=0,
            alerts_accepted=0,
            alerts_rejected=0,
            probes_sent=5,
        )
        metrics = collect_metrics(result)
        # A *defined* 0.0 rate is data, not absence.
        assert metrics["detection_rate"] == 0.0
        assert metrics["false_positive_rate"] == 0.0


class TestMonteCarloLayer:
    def test_absent_metric_never_enters_the_aggregate(self):
        summaries = run_trials(
            PipelineExperiment(overrides=NO_MALICIOUS),
            trials=2,
            base_seed=5,
        )
        assert "detection_rate" not in summaries
        assert summaries["false_positive_rate"].n == 2

    def test_partially_present_metric_aggregates_over_defined_trials(self):
        def experiment(seed):
            # Odd seeds produce trials where the rate is undefined.
            metrics = {"probes_sent": float(seed)}
            if seed % 2 == 0:
                metrics["detection_rate"] = 1.0
            return metrics

        summaries = run_trials(
            lambda seed: experiment(seed % 4), trials=8, base_seed=0
        )
        assert summaries["probes_sent"].n == 8
        # Only the defined trials feed the mean — no zero-bias.
        assert summaries["detection_rate"].n < 8
        assert summaries["detection_rate"].mean == 1.0

    def test_all_trials_failed_raises_instead_of_empty(self):
        def boom(seed):
            raise ValueError("nope")

        runner = ExperimentRunner(keep_going=True)
        with pytest.raises(ConfigurationError):
            run_trials(boom, trials=2, base_seed=0, runner=runner)


class TestQueueBackendLayer:
    def test_merged_queue_results_preserve_missing_keys(self, tmp_path):
        experiment = PipelineExperiment(overrides=NO_MALICIOUS)
        serial = run_trials(experiment, trials=3, base_seed=9)
        queued = run_trials(
            experiment,
            trials=3,
            base_seed=9,
            runner=ExperimentRunner(
                backend="queue", n_workers=2, queue_dir=tmp_path / "q"
            ),
        )
        assert "detection_rate" not in queued
        assert set(serial) == set(queued)
        for name in serial:
            assert serial[name].mean == queued[name].mean
            assert serial[name].half_width == queued[name].half_width


class TestArenaReportLayer:
    ARENA = {
        "p_grid": [0.2],
        "trials": 1,
        "headline_p": 0.2,
        "detectors": {
            "paper": {
                "grid": {
                    "0.2": {
                        "detection_rate": None,
                        "false_positive_rate": 0.125,
                        "affected_non_beacons_per_malicious": 0.0,
                    }
                },
                "headline": {
                    "detection_rate": None,
                    "false_positive_rate": 0.125,
                    "affected_non_beacons_per_malicious": 0.0,
                },
                "decisions": 10,
                "cpu_us_per_decision": None,
            }
        },
    }

    def test_fmt_renders_none_as_na(self):
        assert _fmt(None) == "n/a"
        assert _fmt(0.0) == "0.000"

    def test_markdown_renders_undefined_cells_as_na(self):
        report = render_arena_markdown(self.ARENA)
        assert "| paper | n/a | 0.125 | 0.00 | n/a | 10 |" in report
        assert "| paper | n/a |" in report.split("## Detection rate vs P'")[1]

    def test_headlines_keep_none_not_zero(self):
        headline = arena_headlines(self.ARENA)["arena"]["paper"]
        assert headline["detection_rate"] is None
        assert headline["cpu_us_per_decision"] is None
        assert headline["false_positive_rate"] == 0.125
