"""Tests for the per-figure generators.

Shape assertions mirror what the paper's figures show (monotonicity,
ordering of curves, peaks) rather than absolute values — see EXPERIMENTS.md.
"""

import pytest

from repro.experiments import figures
from repro.sim.timing import BIT_TIME_CYCLES


class TestFigure04:
    def test_cdf_monotone_and_normalized(self):
        fig = figures.figure04_rtt_cdf(samples=4000, seed=1)
        cdf = fig.series["cdf"]
        assert all(a <= b for a, b in zip(cdf.y, cdf.y[1:]))
        assert cdf.y[-1] == pytest.approx(1.0)
        assert cdf.y[0] <= 0.01

    def test_narrow_support(self):
        fig = figures.figure04_rtt_cdf(samples=4000, seed=1)
        cdf = fig.series["cdf"]
        width_bits = (cdf.x[-1] - cdf.x[0]) / BIT_TIME_CYCLES
        assert width_bits <= 4.5

    def test_notes_report_window(self):
        fig = figures.figure04_rtt_cdf(samples=1000, seed=2)
        assert "x_min" in fig.notes and "x_max" in fig.notes


class TestFigure05:
    def test_curve_ordering_by_m(self):
        fig = figures.figure05_detection_vs_pprime()
        at = lambda m: fig.series[f"m={m}"].y_at(0.2)  # noqa: E731
        assert at(1) < at(2) < at(4) < at(8)

    def test_monotone_in_pprime(self):
        fig = figures.figure05_detection_vs_pprime()
        for s in fig.series.values():
            assert s.y == sorted(s.y)


class TestFigure06:
    def test_tau_ordering(self):
        fig = figures.figure06_detection_rate()
        at = lambda tau: fig.series[f"(a) tau={tau}, m=8"].y_at(0.1)  # noqa: E731
        assert at(1) > at(2) > at(3) > at(4)

    def test_m_ordering(self):
        fig = figures.figure06_detection_rate()
        at = lambda m: fig.series[f"(b) m={m}, tau=4"].y_at(0.1)  # noqa: E731
        assert at(1) < at(2) < at(4) < at(8)

    def test_rises_quickly_with_pprime(self):
        fig = figures.figure06_detection_rate()
        s = fig.series["(a) tau=2, m=8"]
        assert s.y_at(0.02) < 0.5
        assert s.y_at(0.5) > 0.95


class TestFigure07:
    def test_monotone_in_nc(self):
        fig = figures.figure07_detection_vs_nc()
        for s in fig.series.values():
            assert s.y == sorted(s.y)

    def test_larger_pprime_detected_sooner(self):
        fig = figures.figure07_detection_vs_nc()
        assert fig.series["P'=0.4"].y_at(50) > fig.series["P'=0.1"].y_at(50)


class TestFigure08:
    def test_larger_tau_more_affected_at_peak(self):
        fig = figures.figure08_affected_vs_pprime()
        peak = lambda tau, m: max(  # noqa: E731
            fig.series[f"tau={tau}, m={m}"].y
        )
        assert peak(4, 8) > peak(2, 8)

    def test_larger_m_fewer_affected_at_peak(self):
        fig = figures.figure08_affected_vs_pprime()
        peak = lambda tau, m: max(  # noqa: E731
            fig.series[f"tau={tau}, m={m}"].y
        )
        assert peak(2, 8) < peak(2, 4)

    def test_only_a_few_nodes_affected(self):
        """The paper: 'in practice, there are only a few non-beacon nodes
        accepting the malicious beacon signals'."""
        fig = figures.figure08_affected_vs_pprime()
        assert max(max(s.y) for s in fig.series.values()) < 15


class TestFigure09:
    @pytest.fixture(scope="class")
    def fig(self):
        return figures.figure09_worstcase_affected(
            nc_grid=tuple(range(0, 255, 15)), grid=80
        )

    def test_rises_then_drops(self, fig):
        s = fig.series["m=8, tau=1"]
        peak_idx = s.y.index(max(s.y))
        assert 0 < peak_idx < len(s.y) - 1
        assert s.y[-1] < max(s.y)

    def test_smaller_tau_caps_damage(self, fig):
        assert max(fig.series["m=8, tau=1"].y) < max(fig.series["m=8, tau=2"].y)


class TestFigure10:
    def test_overflow_probability_drops_with_quota(self):
        fig = figures.figure10_report_counter()
        for s in fig.series.values():
            # Non-increasing up to floating-point dust near zero.
            assert all(a >= b - 1e-12 for a, b in zip(s.y, s.y[1:]))

    def test_near_zero_at_tau_two(self):
        fig = figures.figure10_report_counter()
        for s in fig.series.values():
            assert s.y_at(2) < 0.05


class TestFigure11:
    def test_deployment_counts(self):
        fig = figures.figure11_deployment(seed=0)
        assert len(fig.series["benign beacons"].x) == 100
        assert len(fig.series["malicious beacons"].x) == 10


@pytest.mark.slow
class TestSimulationFigures:
    def test_figure12_sim_tracks_theory(self):
        fig = figures.figure12_sim_detection_rate(p_grid=(0.1, 0.4), trials=1)
        sim = fig.series["simulation"]
        theory = fig.series["theory"]
        # The closed-form theory assumes every unmasked malicious signal
        # is accepted by the detecting node; with the Section 2.2.1 range
        # check, a uniform-direction lie sometimes declares a location
        # outside the prober's range and is discarded instead — so the
        # theory upper-bounds the simulation, and both rise with P'.
        assert sim.y_at(0.1) < sim.y_at(0.4)
        for p in (0.1, 0.4):
            assert 0.0 <= sim.y_at(p) <= theory.y_at(p) + 0.05
        assert sim.y_at(0.4) > 0.6

    def test_figure13_affected_small(self):
        fig = figures.figure13_sim_affected(p_grid=(0.2,), trials=1)
        assert fig.series["simulation"].y_at(0.2) < 15

    def test_figure14_roc_point(self):
        fig = figures.figure14_roc(
            n_as=(5,), tau_reports=(2,), tau_alerts=(2,), trials=1
        )
        (series,) = fig.series.values()
        fp, det = series.x[0], series.y[0]
        assert 0.0 <= fp <= 0.5
        assert 0.0 <= det <= 1.0

    def test_registry_complete(self):
        assert set(figures.ALL_FIGURES) == {
            f"figure{i:02d}" for i in range(4, 15)
        }
