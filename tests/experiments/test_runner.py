"""Tests for the parallel experiment runner and its result cache.

Covers the determinism contract (parallel == serial, bit for bit), the
content-addressed cache (hit / miss / invalidation / corruption), the
timing hooks and progress callback, and a tiny end-to-end smoke workload
(``-m smoke``) that exercises 2 workers plus a temp cache dir inside the
tier-1 suite.
"""

import json

import pytest

import repro
from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError
from repro.experiments import figures
from repro.experiments.cli import main
from repro.experiments.montecarlo import run_trials, trial_seeds
from repro.experiments.runner import (
    PIPELINE_METRICS,
    ExperimentRunner,
    PipelineExperiment,
    ProgressEvent,
    ResultCache,
    cache_key,
)
from repro.experiments.series import FigureData
from repro.experiments.sweeps import sweep_config_field
from repro.sim.rng import derive_seed

#: Small enough for sub-second pipeline runs; still a real deployment.
SMALL = dict(
    n_total=120,
    n_beacons=20,
    n_malicious=2,
    field_width_ft=400.0,
    field_height_ft=400.0,
    m_detecting_ids=2,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
)

SMALL_CONFIG = PipelineConfig(seed=5, **SMALL)


def _double(x):
    """Module-level (hence picklable) toy task."""
    return 2 * x


class TestRunnerBasics:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(n_workers=0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner(n_workers=-2)

    def test_map_preserves_order_serial(self):
        runner = ExperimentRunner()
        assert runner.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert runner.stats.executed == 3

    def test_map_preserves_order_parallel(self):
        runner = ExperimentRunner(n_workers=2)
        assert runner.map(_double, list(range(7))) == [2 * i for i in range(7)]
        assert runner.stats.executed == 7

    def test_key_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner().map(_double, [1, 2], keys=["only-one"])

    def test_progress_and_timing_hooks(self):
        events = []
        runner = ExperimentRunner(progress=events.append)
        runner.map(_double, [1, 2], keys=["a", "b"])
        assert [e.key for e in events] == ["a", "b"]
        assert all(isinstance(e, ProgressEvent) for e in events)
        assert events[-1].done == events[-1].total == 2
        assert not any(e.cached for e in events)
        assert set(runner.stats.task_seconds) == {"a", "b"}
        assert runner.stats.total_seconds >= 0.0
        runner.reset_stats()
        assert runner.stats.executed == 0


class TestCacheKey:
    def test_stable_for_equal_configs(self):
        assert cache_key(SMALL_CONFIG) == cache_key(PipelineConfig(seed=5, **SMALL))

    def test_changes_with_config_and_seed(self):
        base = cache_key(SMALL_CONFIG)
        assert base != cache_key(PipelineConfig(seed=6, **SMALL))
        assert base != cache_key(
            PipelineConfig(seed=5, **{**SMALL, "p_prime": 0.7})
        )

    def test_changes_with_code_version(self, monkeypatch):
        before = cache_key(SMALL_CONFIG)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache_key(SMALL_CONFIG) != before


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"detection_rate": 0.5}, config=SMALL_CONFIG)
        assert cache.get("k") == {"detection_rate": 0.5}

    def test_missing_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_corrupted_file_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"x": 1.0})
        cache.path("k").write_text("{not json")
        assert cache.get("k") is None
        cache.path("k").write_text(json.dumps({"schema": 999, "metrics": {}}))
        assert cache.get("k") is None
        cache.path("k").write_text(json.dumps({"schema": 1, "metrics": {"x": "NaN?"}}))
        assert cache.get("k") is None


class TestPipelineCaching:
    def test_hit_miss_and_invalidation(self, tmp_path):
        cold = ExperimentRunner(cache_dir=tmp_path)
        first = cold.run_pipeline_configs([SMALL_CONFIG])
        assert cold.stats.executed == 1
        assert cold.stats.cache_misses == 1 and cold.stats.cache_hits == 0
        assert set(first[0]) == set(PIPELINE_METRICS)

        warm = ExperimentRunner(cache_dir=tmp_path)
        second = warm.run_pipeline_configs([SMALL_CONFIG])
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 1
        assert second == first

        # A config change is a different content address: recompute.
        changed = ExperimentRunner(cache_dir=tmp_path)
        changed.run_pipeline_configs(
            [PipelineConfig(seed=5, **{**SMALL, "p_prime": 0.8})]
        )
        assert changed.stats.executed == 1 and changed.stats.cache_hits == 0

    def test_corrupted_entry_recomputes(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        first = runner.run_pipeline_configs([SMALL_CONFIG])
        runner.cache.path(cache_key(SMALL_CONFIG)).write_text("garbage")
        again = ExperimentRunner(cache_dir=tmp_path)
        second = again.run_pipeline_configs([SMALL_CONFIG])
        assert again.stats.executed == 1  # fell back to recompute
        assert second == first  # and rewrote a valid entry
        assert ExperimentRunner(cache_dir=tmp_path).run_pipeline_configs(
            [SMALL_CONFIG]
        ) == first

    def test_cached_progress_event(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run_pipeline_configs([SMALL_CONFIG])
        events = []
        runner = ExperimentRunner(cache_dir=tmp_path, progress=events.append)
        runner.run_pipeline_configs([SMALL_CONFIG], keys=["point"])
        assert events[0].cached and events[0].key == "point"


class TestParallelDeterminism:
    """The acceptance bar: parallel output is bit-identical to serial."""

    def test_sweep_parallel_equals_serial(self):
        serial = sweep_config_field(
            "p_prime", (0.2, 0.8), base=SMALL, trials=2, base_seed=7
        )
        parallel = sweep_config_field(
            "p_prime", (0.2, 0.8), base=SMALL, trials=2, base_seed=7,
            runner=ExperimentRunner(n_workers=2),
        )
        for label in serial.series:
            assert serial.series[label].x == parallel.series[label].x
            assert serial.series[label].y == parallel.series[label].y

    def test_run_trials_parallel_equals_serial(self):
        experiment = PipelineExperiment(overrides=SMALL)
        serial = run_trials(experiment, trials=3, base_seed=9)
        parallel = run_trials(
            experiment, trials=3, base_seed=9,
            runner=ExperimentRunner(n_workers=2),
        )
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name].mean == parallel[name].mean
            assert serial[name].half_width == parallel[name].half_width

    def test_trial_seed_derivation_unchanged(self):
        # The exact historical formula — the cache and the parallel path
        # both depend on it never drifting silently.
        assert trial_seeds(3, base_seed=4) == [
            derive_seed(4, f"trial:{t}") % (2**31) for t in range(3)
        ]


class TestFigureDataJson:
    def test_roundtrip(self):
        fig = FigureData(
            figure_id="f", title="t", x_label="x", y_label="y", notes="n"
        )
        fig.new_series("a").append(1, 2)
        fig.new_series("b").append(3, 4)
        back = FigureData.from_dict(json.loads(json.dumps(fig.to_dict())))
        assert back.figure_id == "f" and back.notes == "n"
        assert back.series["a"].points() == [(1.0, 2.0)]
        assert back.series["b"].points() == [(3.0, 4.0)]

    def test_duplicate_labels_rejected(self):
        data = {
            "figure_id": "f",
            "series": [{"label": "a", "x": [], "y": []}] * 2,
        }
        with pytest.raises(ValueError):
            FigureData.from_dict(data)


class TestCliFlags:
    def test_workers_and_json_flags(self, tmp_path, capsys):
        code = main(
            [
                "figure05",
                "--quiet",
                "--workers",
                "2",
                "--out",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "figure05.json").read_text())
        assert payload["figure_id"] == "figure05"
        assert {s["label"] for s in payload["series"]} >= {"m=1", "m=8"}

    def test_workers_zero_means_cpu_count(self):
        import os

        from repro.experiments.cli import build_parser, make_runner

        args = build_parser().parse_args(["figure05", "--workers", "0"])
        assert make_runner(args).n_workers == (os.cpu_count() or 1)


class TestProfiledRuns:
    def test_profiles_collected_per_executed_trial(self):
        runner = ExperimentRunner(profile=True)
        results = runner.run_pipeline_configs([SMALL_CONFIG], keys=["t"])
        assert set(results[0]) == set(PIPELINE_METRICS)
        assert len(runner.stats.profiles) == 1
        summary = runner.stats.profile_summary()
        assert summary["trials"] == 1
        # Every pipeline phase was timed, and the hot-path counters moved.
        for phase in ("build", "detection", "localization", "metrics"):
            assert phase in summary["phases"]
        assert summary["counters"]["probes"] == int(results[0]["probes_sent"])
        assert summary["counters"]["distance_evals"] > 0
        assert summary["counters"]["deliveries"] > 0
        assert summary["counters"]["spatial_queries"] > 0

    def test_profiling_leaves_metrics_bit_identical(self):
        plain = ExperimentRunner().run_pipeline_configs([SMALL_CONFIG])
        profiled = ExperimentRunner(profile=True).run_pipeline_configs(
            [SMALL_CONFIG]
        )
        assert plain == profiled

    def test_cache_hits_contribute_no_profiles(self, tmp_path):
        cold = ExperimentRunner(profile=True, cache_dir=tmp_path)
        first = cold.run_pipeline_configs([SMALL_CONFIG])
        assert len(cold.stats.profiles) == 1
        warm = ExperimentRunner(profile=True, cache_dir=tmp_path)
        second = warm.run_pipeline_configs([SMALL_CONFIG])
        assert warm.stats.executed == 0
        assert warm.stats.profiles == []
        assert warm.stats.profile_summary()["trials"] == 0
        assert second == first

    def test_profiled_parallel_matches_serial(self):
        serial = ExperimentRunner(profile=True)
        parallel = ExperimentRunner(profile=True, n_workers=2)
        configs = [
            SMALL_CONFIG,
            PipelineConfig(seed=6, **SMALL),
        ]
        assert serial.run_pipeline_configs(configs) == (
            parallel.run_pipeline_configs(configs)
        )
        assert parallel.stats.profile_summary()["trials"] == 2


@pytest.mark.smoke
def test_smoke_parallel_figure_end_to_end(tmp_path):
    """One tiny figure benchmark, 2 workers, temp cache dir, end to end."""
    runner = ExperimentRunner(n_workers=2, cache_dir=tmp_path / "cache")
    kwargs = dict(
        p_grid=(0.2,),
        trials=2,
        config_kwargs=dict(SMALL),
    )
    fig = figures.figure12_sim_detection_rate(runner=runner, **kwargs)
    assert runner.stats.executed == 2
    assert set(fig.series) == {"simulation", "theory"}

    warm = ExperimentRunner(n_workers=2, cache_dir=tmp_path / "cache")
    again = figures.figure12_sim_detection_rate(runner=warm, **kwargs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 2
    assert again.series["simulation"].y == fig.series["simulation"].y
