"""Tests for the field-map SVG renderer."""

import pytest

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.errors import ConfigurationError
from repro.experiments.fieldmap import (
    FieldMap,
    MarkerGroup,
    pipeline_field_map,
    render_field_map,
)
from repro.utils.geometry import Point


class TestRenderFieldMap:
    def make_scene(self):
        scene = FieldMap(width_ft=100.0, height_ft=100.0, title="t")
        scene.add_group(
            MarkerGroup(label="a", points=[Point(10, 10)], color="#123456")
        )
        scene.add_group(
            MarkerGroup(
                label="b", points=[Point(50, 50)], shape="cross", color="#aa0000"
            )
        )
        scene.add_chord(Point(0, 0), Point(100, 100), "tunnel")
        return scene

    def test_renders_svg(self):
        svg = render_field_map(self.make_scene())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "#123456" in svg
        assert "tunnel" in svg

    def test_shapes(self):
        svg = render_field_map(self.make_scene())
        assert "<circle" in svg  # circles for group a + legend
        assert "stroke-dasharray" in svg  # the chord

    def test_unknown_shape_rejected(self):
        scene = FieldMap(width_ft=10, height_ft=10)
        scene.add_group(
            MarkerGroup(label="x", points=[Point(1, 1)], shape="star")
        )
        with pytest.raises(ConfigurationError):
            render_field_map(scene)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            render_field_map(FieldMap(width_ft=0.0, height_ft=10.0))

    def test_y_axis_points_up(self):
        scene = FieldMap(width_ft=100.0, height_ft=100.0)
        scene.add_group(
            MarkerGroup(label="low", points=[Point(50, 0)], color="#111111")
        )
        scene.add_group(
            MarkerGroup(label="high", points=[Point(50, 100)], color="#222222")
        )
        svg = render_field_map(scene)
        low_line = next(l for l in svg.splitlines() if "#111111" in l and "circle" in l)
        high_line = next(l for l in svg.splitlines() if "#222222" in l and "circle" in l)

        def cy(line):
            return float(line.split('cy="')[1].split('"')[0])

        assert cy(low_line) > cy(high_line)  # SVG y grows downward


class TestPipelineFieldMap:
    def test_outcome_scene(self):
        pipeline = SecureLocalizationPipeline(
            PipelineConfig(
                n_total=150,
                n_beacons=30,
                n_malicious=3,
                field_width_ft=400.0,
                field_height_ft=400.0,
                p_prime=0.6,
                rtt_calibration_samples=300,
                wormhole_endpoints=((50.0, 50.0), (350.0, 300.0)),
                seed=7,
            )
        )
        pipeline.run()
        scene = pipeline_field_map(pipeline)
        labels = [g.label for g in scene.groups]
        assert labels == [
            "sensor",
            "misled sensor",
            "benign beacon",
            "malicious beacon",
            "revoked",
        ]
        total_points = sum(len(g.points) for g in scene.groups)
        assert total_points == 150  # every node appears exactly once
        assert scene.chords  # the wormhole is drawn
        svg = render_field_map(scene)
        assert "revoked" in svg
