"""Docstring policy for the paper-core and experiments packages.

Mirrors the ruff pydocstyle configuration in ``pyproject.toml`` (rules
D100/D101/D103 scoped to ``src/repro/core`` and ``src/repro/experiments``)
so the policy is enforced in plain pytest runs even where ruff is not
installed. Additionally, every ``repro.core`` module must carry a
``Paper section:`` reference line tying it back to the source paper.
"""

import ast
import pathlib

import pytest

import repro

SRC = pathlib.Path(repro.__file__).resolve().parent
SCOPED_PACKAGES = ("core", "experiments")


def _scoped_modules():
    for package in SCOPED_PACKAGES:
        for path in sorted((SRC / package).glob("*.py")):
            yield package, path


MODULES = list(_scoped_modules())


@pytest.mark.parametrize(
    "package,path", MODULES, ids=[f"{pkg}/{p.name}" for pkg, p in MODULES]
)
def test_module_docstring_policy(package, path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path} has no module docstring (D100)"

    # Public top-level classes and functions must be documented too
    # (D101/D103 in the ruff config).
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            assert ast.get_docstring(node), (
                f"{path}: public {node.name!r} has no docstring"
            )

    # Core modules additionally cite the paper section they implement.
    if package == "core":
        assert "Paper section:" in docstring, (
            f"{path}: core module docstring lacks a 'Paper section:' line"
        )
