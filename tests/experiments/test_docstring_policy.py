"""Docstring policy for the paper-core, experiments, and faults packages.

Mirrors the ruff pydocstyle configuration in ``pyproject.toml`` (rules
D100/D101/D103 scoped to ``src/repro/core``, ``src/repro/detectors``,
``src/repro/experiments``, ``src/repro/faults``, ``src/repro/obs``,
``src/repro/revocation``, ``src/repro/verify``, and ``src/repro/vec``)
so the policy is enforced in plain pytest runs even where ruff is not
installed. Additionally, every ``repro.core``, ``repro.detectors``,
``repro.faults``, ``repro.obs``, ``repro.revocation``, ``repro.verify``,
and ``repro.vec`` module must
carry a ``Paper section:`` reference line tying it back to the source
paper — the fault models exist to stress specific paper assumptions,
the observability layer to measure them, the conformance harness to
check them, the vectorized kernels to reproduce them bit-for-bit at
speed, the revocation service to scale them, the detector arena to
benchmark successors against them, and the citation is the
map. The ARQ module
``sim/reliable.py`` (the §3.2 retransmission machinery) is covered
explicitly alongside the packages.
"""

import ast
import pathlib

import pytest

import repro

SRC = pathlib.Path(repro.__file__).resolve().parent
SCOPED_PACKAGES = (
    "core",
    "detectors",
    "experiments",
    "faults",
    "obs",
    "revocation",
    "verify",
    "vec",
)
#: Individually covered modules outside the scoped packages: package-level
#: rules applied, keyed by the package whose extra rules apply.
EXTRA_MODULES = (("core", SRC / "sim" / "reliable.py"),)


def _scoped_modules():
    for package in SCOPED_PACKAGES:
        for path in sorted((SRC / package).glob("*.py")):
            yield package, path
    yield from EXTRA_MODULES


MODULES = list(_scoped_modules())


@pytest.mark.parametrize(
    "package,path", MODULES, ids=[f"{pkg}/{p.name}" for pkg, p in MODULES]
)
def test_module_docstring_policy(package, path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path} has no module docstring (D100)"

    # Public top-level classes and functions must be documented too
    # (D101/D103 in the ruff config).
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            assert ast.get_docstring(node), (
                f"{path}: public {node.name!r} has no docstring"
            )

    # Core, faults, obs, revocation, verify, and vec modules (and
    # sim/reliable.py, which implements the §3.2 retransmission
    # assumption) additionally cite the paper section they implement,
    # stress, measure, scale, or check.
    if package in (
        "core",
        "detectors",
        "faults",
        "obs",
        "revocation",
        "verify",
        "vec",
    ):
        assert "Paper section:" in docstring, (
            f"{path}: module docstring lacks a 'Paper section:' line"
        )
