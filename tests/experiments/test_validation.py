"""Tests for the sim-vs-theory validation helpers."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.series import Series
from repro.experiments.validation import (
    dominates,
    is_monotone,
    max_abs_gap,
    proportion_consistent,
    proportion_z_score,
    single_peak_index,
)


class TestProportionZ:
    def test_exact_match_zero(self):
        assert proportion_z_score(50, 100, 0.5) == 0.0

    def test_direction(self):
        assert proportion_z_score(70, 100, 0.5) > 0
        assert proportion_z_score(30, 100, 0.5) < 0

    def test_magnitude(self):
        # 60/100 vs 0.5: z = 0.1 / 0.05 = 2.
        assert proportion_z_score(60, 100, 0.5) == pytest.approx(2.0)

    def test_degenerate_predictions(self):
        assert proportion_z_score(0, 50, 0.0) == 0.0
        assert proportion_z_score(1, 50, 0.0) == math.inf
        assert proportion_z_score(49, 50, 1.0) == -math.inf

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            proportion_z_score(1, 0, 0.5)
        with pytest.raises(ConfigurationError):
            proportion_z_score(5, 4, 0.5)
        with pytest.raises(ConfigurationError):
            proportion_z_score(1, 4, 1.5)

    def test_consistency_check_statistical(self):
        # Simulated binomial draws should pass at 3 sigma ~99.7% of runs.
        rng = random.Random(11)
        passes = 0
        for _ in range(200):
            hits = sum(1 for _ in range(300) if rng.random() < 0.3)
            passes += proportion_consistent(hits, 300, 0.3)
        assert passes >= 190

    def test_detects_wrong_theory(self):
        rng = random.Random(12)
        hits = sum(1 for _ in range(1000) if rng.random() < 0.3)
        assert not proportion_consistent(hits, 1000, 0.5)


class TestSeriesHelpers:
    def make(self, ys, label="s", xs=None):
        s = Series(label)
        for i, y in enumerate(ys):
            s.append(xs[i] if xs else i, y)
        return s

    def test_max_abs_gap(self):
        a = self.make([1.0, 2.0, 3.0])
        b = self.make([1.5, 2.0, 2.0])
        assert max_abs_gap(a, b) == pytest.approx(1.0)

    def test_gap_requires_same_grid(self):
        a = self.make([1.0], xs=[0])
        b = self.make([1.0], xs=[5])
        with pytest.raises(ConfigurationError):
            max_abs_gap(a, b)

    def test_is_monotone(self):
        assert is_monotone([1, 2, 2, 3])
        assert not is_monotone([1, 3, 2])
        assert is_monotone([3, 2, 1], increasing=False)

    def test_single_peak(self):
        assert single_peak_index([1, 3, 7, 4, 2]) == 2

    def test_peak_at_ends_allowed(self):
        assert single_peak_index([5, 4, 3]) == 0
        assert single_peak_index([1, 2, 3]) == 2

    def test_non_unimodal_rejected(self):
        with pytest.raises(ConfigurationError):
            single_peak_index([1, 5, 2, 6, 1])

    def test_dominates(self):
        hi = self.make([2.0, 3.0])
        lo = self.make([1.0, 3.0])
        assert dominates(hi, lo)
        assert not dominates(lo, hi) or hi.y == lo.y
