"""Tests for the generic pipeline parameter sweep."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import SUPPORTED_METRICS, sweep_config_field

SMALL = dict(
    n_total=120,
    n_beacons=20,
    n_malicious=2,
    field_width_ft=400.0,
    field_height_ft=400.0,
    m_detecting_ids=2,
    rtt_calibration_samples=200,
    wormhole_endpoints=None,
)


class TestValidation:
    def test_unknown_field(self):
        with pytest.raises(ConfigurationError):
            sweep_config_field("no_such_field", (1,), base=SMALL)

    def test_empty_grid(self):
        with pytest.raises(ConfigurationError):
            sweep_config_field("p_prime", (), base=SMALL)

    def test_bad_metric(self):
        with pytest.raises(ConfigurationError):
            sweep_config_field(
                "p_prime", (0.1,), metrics=("nope",), base=SMALL
            )

    def test_zero_trials(self):
        with pytest.raises(ConfigurationError):
            sweep_config_field("p_prime", (0.1,), trials=0, base=SMALL)


class TestSweep:
    def test_series_structure(self):
        fig = sweep_config_field(
            "p_prime",
            (0.2, 0.8),
            metrics=("detection_rate", "alerts_accepted"),
            base=SMALL,
        )
        assert set(fig.series) == {"detection_rate", "alerts_accepted"}
        assert fig.series["detection_rate"].x == [0.2, 0.8]
        assert fig.x_label == "p_prime"

    def test_detection_rises_with_p_prime(self):
        fig = sweep_config_field(
            "p_prime", (0.0, 1.0), base={**SMALL, "tau_alert": 0}
        )
        s = fig.series["detection_rate"]
        assert s.y_at(1.0) >= s.y_at(0.0)

    def test_deterministic(self):
        a = sweep_config_field("p_prime", (0.5,), base=SMALL, base_seed=7)
        b = sweep_config_field("p_prime", (0.5,), base=SMALL, base_seed=7)
        assert a.series["detection_rate"].y == b.series["detection_rate"].y

    def test_trials_average(self):
        fig = sweep_config_field(
            "p_prime", (0.5,), base=SMALL, trials=3, base_seed=11
        )
        value = fig.series["detection_rate"].y[0]
        assert 0.0 <= value <= 1.0

    def test_base_overrides_cannot_shadow_swept_field(self):
        fig = sweep_config_field(
            "p_prime",
            (0.3,),
            base={**SMALL, "p_prime": 0.9},  # silently dropped
        )
        assert fig.series["detection_rate"].x == [0.3]

    def test_supported_metrics_exist_on_result(self):
        from repro.core.pipeline import PipelineResult

        import dataclasses

        result_fields = {f.name for f in dataclasses.fields(PipelineResult)}
        for metric in SUPPORTED_METRICS:
            assert metric in result_fields or hasattr(PipelineResult, metric)
