"""Tests for the reproduction-report generator."""

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.report import build_report, collect_outputs, write_report


@pytest.fixture
def output_dir(tmp_path):
    d = tmp_path / "output"
    d.mkdir()
    (d / "figure05.txt").write_text("== figure05 ==\ndata-a\n")
    (d / "figure04.txt").write_text("== figure04 ==\ndata-b\n")
    (d / "ablation_tdoa.txt").write_text("== ablation_tdoa ==\ndata-c\n")
    return d


class TestCollect:
    def test_ordering_figures_then_ablations(self, output_dir):
        names = [p.stem for p in collect_outputs(output_dir)]
        assert names == ["figure04", "figure05", "ablation_tdoa"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            collect_outputs(tmp_path / "nope")


class TestBuild:
    def test_contains_sections_and_data(self, output_dir):
        report = build_report(output_dir)
        assert report.startswith("# Reproduction report")
        assert "## figure04" in report
        assert "data-a" in report and "data-c" in report
        # Figures appear before ablations.
        assert report.index("## figure04") < report.index("## ablation_tdoa")

    def test_deterministic_given_timestamp(self, output_dir):
        import datetime

        t = datetime.datetime(2026, 7, 6, 12, 0, 0)
        assert build_report(output_dir, now=t) == build_report(output_dir, now=t)


class TestWrite:
    def test_writes_file(self, output_dir, tmp_path):
        dest = write_report(output_dir, tmp_path / "r" / "REPORT.md")
        assert dest.exists()
        assert "figure05" in dest.read_text()


class TestCliReport:
    def test_report_to_stdout(self, output_dir, capsys):
        assert main(["report", "--bench-output", str(output_dir)]) == 0
        out = capsys.readouterr().out
        assert "## figure05" in out

    def test_report_to_file(self, output_dir, tmp_path, capsys):
        code = main(
            [
                "report",
                "--bench-output",
                str(output_dir),
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "REPORT.md").exists()
