"""Tests for Node dispatch, TraceRecorder, and the CSMA medium."""

import pytest

from repro.errors import SimulationError
from repro.sim.mac import CsmaMedium
from repro.sim.messages import BeaconPacket, BeaconRequest, Packet
from repro.sim.node import Node
from repro.sim.radio import Reception, Transmission
from repro.sim.trace import TraceRecorder
from repro.utils.geometry import Point


def make_reception(packet):
    tx = Transmission(packet=packet, tx_origin=Point(0, 0), departure_time=0.0)
    return Reception(
        packet=packet, arrival_time=1.0, measured_distance_ft=10.0, transmission=tx
    )


class TestNodeDispatch:
    def test_handler_called(self):
        node = Node(1, Point(0, 0))
        seen = []
        node.on(BeaconRequest, lambda n, r: seen.append(r.packet))
        node.handle(make_reception(BeaconRequest(src_id=9, dst_id=1)))
        assert len(seen) == 1

    def test_unhandled_type_counts_dropped(self):
        node = Node(1, Point(0, 0))
        node.handle(make_reception(BeaconPacket(src_id=9, dst_id=1)))
        assert node.received_count == 1
        assert node.dropped_count == 1

    def test_subclass_dispatch(self):
        node = Node(1, Point(0, 0))
        seen = []
        node.on(Packet, lambda n, r: seen.append(r.packet.kind()))
        node.handle(make_reception(BeaconPacket(src_id=9, dst_id=1)))
        assert seen == ["BeaconPacket"]

    def test_exact_match_beats_subclass(self):
        node = Node(1, Point(0, 0))
        seen = []
        node.on(Packet, lambda n, r: seen.append("base"))
        node.on(BeaconPacket, lambda n, r: seen.append("exact"))
        node.handle(make_reception(BeaconPacket(src_id=9, dst_id=1)))
        assert seen == ["exact"]

    def test_send_without_network_raises(self):
        node = Node(1, Point(0, 0))
        with pytest.raises(SimulationError):
            node.send(BeaconRequest(src_id=1, dst_id=2))

    def test_distance_to(self):
        a = Node(1, Point(0, 0))
        b = Node(2, Point(3, 4))
        assert a.distance_to(b) == pytest.approx(5.0)


class TestTraceRecorder:
    def test_record_and_filter(self):
        t = TraceRecorder()
        t.record(1.0, "alert", target=5)
        t.record(2.0, "alert", target=6)
        t.record(3.0, "revoke", target=5)
        assert t.count("alert") == 2
        assert len(t.where("alert", target=5)) == 1
        assert t.of_kind("revoke")[0]["target"] == 5

    def test_disabled_recorder_ignores(self):
        t = TraceRecorder(enabled=False)
        t.record(1.0, "x")
        assert len(t) == 0

    def test_capacity_cap(self):
        t = TraceRecorder(capacity=2)
        t.record(0.0, "e", i=0)
        t.record(1.0, "e", i=1)
        # The first overflow warns once; further drops are silent counts.
        with pytest.warns(RuntimeWarning, match="capacity 2 reached"):
            t.record(2.0, "e", i=2)
        for i in range(3, 5):
            t.record(float(i), "e", i=i)
        assert len(t) == 2
        assert t.dropped == 3

    def test_clear(self):
        t = TraceRecorder()
        t.record(1.0, "x")
        t.clear()
        assert len(t) == 0

    def test_event_get_default(self):
        t = TraceRecorder()
        t.record(1.0, "x", a=1)
        event = t.of_kind("x")[0]
        assert event.get("missing", 42) == 42


class TestCsmaMedium:
    def test_non_overlapping_windows_clear(self):
        m = CsmaMedium()
        assert m.try_receive(1, 0.0, 10.0, tx_id=100) is True
        assert m.try_receive(1, 20.0, 30.0, tx_id=101) is True
        assert m.is_clear(1, 100)
        assert m.is_clear(1, 101)

    def test_overlap_voids_both(self):
        m = CsmaMedium()
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        assert m.try_receive(1, 5.0, 15.0, tx_id=101) is False
        assert not m.is_clear(1, 100)
        assert not m.is_clear(1, 101)

    def test_different_receivers_do_not_collide(self):
        m = CsmaMedium()
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        assert m.try_receive(2, 5.0, 15.0, tx_id=101) is True

    def test_disabled_medium_always_clear(self):
        m = CsmaMedium(enabled=False)
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        assert m.try_receive(1, 5.0, 15.0, tx_id=101) is True
        assert m.is_clear(1, 100)

    def test_busy_until(self):
        m = CsmaMedium()
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        assert m.busy_until(1, 5.0) == 10.0
        assert m.busy_until(1, 10.0) is None

    def test_prune(self):
        m = CsmaMedium()
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        m.try_receive(1, 20.0, 30.0, tx_id=101)
        assert m.prune(15.0) == 1
        assert m.is_clear(1, 101)

    def test_stats(self):
        m = CsmaMedium()
        m.try_receive(1, 0.0, 10.0, tx_id=100)
        m.try_receive(1, 5.0, 15.0, tx_id=101)
        total, collided = m.stats()
        assert total == 2
        assert collided == 2

    def test_bad_window_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CsmaMedium().try_receive(1, 10.0, 0.0, tx_id=1)

    def test_all_or_nothing_implies_full_packet_delay(self):
        # The Section 2.3 assumption this MAC encodes: an attacker cannot
        # deliver a partial overlap; a replay must wait out the window.
        m = CsmaMedium()
        m.try_receive(1, 0.0, 100.0, tx_id=1)  # the original signal
        # A replay attempted *during* the original window collides:
        assert m.try_receive(1, 50.0, 150.0, tx_id=2) is False
        # A replay after every active window is clean but >= one packet late:
        assert m.try_receive(1, 150.5, 250.5, tx_id=3) is True
