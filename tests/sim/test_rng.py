"""Tests for deterministic RNG streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text(max_size=50))
    def test_fits_64_bits(self, seed, name):
        assert 0 <= derive_seed(seed, name) < 2**64


class TestRngRegistry:
    def test_stream_is_cached(self):
        reg = RngRegistry(seed=7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_independent(self):
        reg = RngRegistry(seed=7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_same_draws(self):
        draws1 = [RngRegistry(3).stream("s").random() for _ in range(1)]
        draws2 = [RngRegistry(3).stream("s").random() for _ in range(1)]
        assert draws1 == draws2

    def test_consuming_one_stream_leaves_other_untouched(self):
        reg1 = RngRegistry(9)
        reg2 = RngRegistry(9)
        # Consume heavily from an unrelated stream in reg1 only.
        for _ in range(1000):
            reg1.stream("noise").random()
        assert reg1.stream("target").random() == reg2.stream("target").random()

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("trial-1")
        assert child.seed != parent.seed
        assert child.stream("s").random() != parent.stream("s").random()

    def test_fork_deterministic(self):
        a = RngRegistry(5).fork("t").stream("s").random()
        b = RngRegistry(5).fork("t").stream("s").random()
        assert a == b
