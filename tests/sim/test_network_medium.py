"""Tests for CSMA collisions wired into network delivery."""

import pytest

from repro.sim.engine import Engine
from repro.sim.mac import CsmaMedium
from repro.sim.messages import DataPacket
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def make_world(medium=None):
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(9), medium=medium)
    received = []
    a = net.add_node(Node(1, Point(0, 0)))
    b = net.add_node(Node(2, Point(0, 100)))
    c = net.add_node(Node(3, Point(50, 50)))
    c.on(DataPacket, lambda n, r: received.append(r.packet.src_id))
    return engine, net, received


class TestCollisions:
    def test_simultaneous_transmissions_collide(self):
        engine, net, received = make_world(medium=CsmaMedium())
        net.unicast(net.node(1), DataPacket(src_id=1, dst_id=3))
        net.unicast(net.node(2), DataPacket(src_id=2, dst_id=3))
        engine.run()
        # All-or-nothing: the receiver gets neither overlapping frame.
        assert received == []
        assert net.trace.count("drop.collision") == 0  # trace disabled

    def test_staggered_transmissions_deliver(self):
        engine, net, received = make_world(medium=CsmaMedium())
        net.unicast(net.node(1), DataPacket(src_id=1, dst_id=3))
        # Send the second one well after the first lands.
        engine.run()
        net.unicast(net.node(2), DataPacket(src_id=2, dst_id=3))
        engine.run()
        assert received == [1, 2]

    def test_no_medium_means_no_collisions(self):
        engine, net, received = make_world(medium=None)
        net.unicast(net.node(1), DataPacket(src_id=1, dst_id=3))
        net.unicast(net.node(2), DataPacket(src_id=2, dst_id=3))
        engine.run()
        assert sorted(received) == [1, 2]

    def test_different_receivers_unaffected(self):
        engine = Engine()
        net = Network(engine, rngs=RngRegistry(9), medium=CsmaMedium())
        got_b, got_d = [], []
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(100, 0)))
        c = net.add_node(Node(3, Point(0, 100)))
        d = net.add_node(Node(4, Point(100, 100)))
        b.on(DataPacket, lambda n, r: got_b.append(1))
        d.on(DataPacket, lambda n, r: got_d.append(1))
        net.unicast(a, DataPacket(src_id=1, dst_id=2))
        net.unicast(c, DataPacket(src_id=3, dst_id=4))
        engine.run()
        assert got_b == [1]
        assert got_d == [1]

    def test_collision_traced_when_enabled(self):
        from repro.sim.trace import TraceRecorder

        engine = Engine()
        trace = TraceRecorder(enabled=True)
        net = Network(
            engine, rngs=RngRegistry(9), medium=CsmaMedium(), trace=trace
        )
        net.add_node(Node(1, Point(0, 0)))
        net.add_node(Node(2, Point(0, 100)))
        victim = net.add_node(Node(3, Point(50, 50)))
        net.unicast(net.node(1), DataPacket(src_id=1, dst_id=3))
        net.unicast(net.node(2), DataPacket(src_id=2, dst_id=3))
        engine.run()
        assert trace.count("drop.collision") == 2
        assert victim.received_count == 0
