"""Tests for packet types and wire representations."""

import dataclasses

from repro.sim.messages import (
    Alert,
    BeaconPacket,
    BeaconRequest,
    DataPacket,
    Packet,
    RevocationNotice,
)
from repro.utils.geometry import Point


class TestWireRepr:
    def test_contains_kind(self):
        p = BeaconRequest(src_id=1, dst_id=2, nonce=3)
        assert b"BeaconRequest" in p.wire_repr()

    def test_excludes_auth_tag(self):
        a = BeaconPacket(src_id=1, dst_id=2, claimed_location=(3.0, 4.0))
        b = a.with_auth(b"12345678")
        assert a.wire_repr() == b.wire_repr()

    def test_sensitive_to_fields(self):
        a = BeaconPacket(src_id=1, dst_id=2, claimed_location=(3.0, 4.0))
        b = BeaconPacket(src_id=1, dst_id=2, claimed_location=(3.0, 5.0))
        assert a.wire_repr() != b.wire_repr()

    def test_distinct_types_distinct_reprs(self):
        a = Alert(src_id=1, dst_id=2, detector_id=1, target_id=3)
        r = RevocationNotice(src_id=1, dst_id=2, revoked_id=3)
        assert a.wire_repr() != r.wire_repr()


class TestWithAuth:
    def test_returns_copy(self):
        p = BeaconRequest(src_id=1, dst_id=2)
        q = p.with_auth(b"tag")
        assert q is not p
        assert q.auth_tag == b"tag"
        assert p.auth_tag is None

    def test_preserves_payload(self):
        p = BeaconPacket(src_id=1, dst_id=2, claimed_location=(9.0, 8.0), nonce=7)
        q = p.with_auth(b"tag")
        assert q.claimed_location == (9.0, 8.0)
        assert q.nonce == 7


class TestBeaconPacket:
    def test_claimed_point(self):
        p = BeaconPacket(src_id=1, dst_id=2, claimed_location=(3.5, 4.5))
        assert p.claimed_point == Point(3.5, 4.5)

    def test_kind(self):
        assert BeaconPacket(src_id=1, dst_id=2).kind() == "BeaconPacket"

    def test_default_size_is_tinyos_frame(self):
        assert Packet(src_id=1, dst_id=2).size_bits == 288


class TestEqualitySemantics:
    def test_auth_tag_not_compared(self):
        a = DataPacket(src_id=1, dst_id=2, payload=b"x")
        b = dataclasses.replace(a)
        b.auth_tag = b"zzz"
        assert a == b

    def test_payload_compared(self):
        a = DataPacket(src_id=1, dst_id=2, payload=b"x")
        b = DataPacket(src_id=1, dst_id=2, payload=b"y")
        assert a != b
