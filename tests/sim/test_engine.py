"""Tests for the discrete-event engine and clock."""

import pytest

from repro.errors import ScheduleError
from repro.sim.clock import CPU_HZ, Clock, cycles_to_seconds, seconds_to_cycles
from repro.sim.engine import Engine


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(start=10.0).now() == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ScheduleError):
            Clock(start=-1.0)

    def test_advance(self):
        c = Clock()
        c.advance_to(5.0)
        assert c.now() == 5.0

    def test_advance_backwards_rejected(self):
        c = Clock(start=5.0)
        with pytest.raises(ScheduleError):
            c.advance_to(4.0)

    def test_cycle_second_roundtrip(self):
        assert seconds_to_cycles(cycles_to_seconds(12345.0)) == pytest.approx(12345.0)

    def test_one_second_is_cpu_hz_cycles(self):
        assert seconds_to_cycles(1.0) == CPU_HZ


class TestEngineScheduling:
    def test_schedule_and_run(self, engine):
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(engine.now()))
        engine.run()
        assert fired == [10.0]

    def test_schedule_in_past_rejected(self, engine):
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(ScheduleError):
            engine.schedule_at(5.0, lambda: None)

    def test_schedule_in_negative_delay_rejected(self, engine):
        with pytest.raises(ScheduleError):
            engine.schedule_in(-1.0, lambda: None)

    def test_time_ordering(self, engine):
        order = []
        engine.schedule_at(20.0, lambda: order.append("b"))
        engine.schedule_at(10.0, lambda: order.append("a"))
        engine.schedule_at(30.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_by_ticket(self, engine):
        order = []
        engine.schedule_at(10.0, lambda: order.append(1))
        engine.schedule_at(10.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_priority_breaks_ties(self, engine):
        order = []
        engine.schedule_at(10.0, lambda: order.append("low"), priority=200)
        engine.schedule_at(10.0, lambda: order.append("high"), priority=1)
        engine.run()
        assert order == ["high", "low"]

    def test_cancel(self, engine):
        fired = []
        event = engine.schedule_at(10.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_events_scheduled_during_run(self, engine):
        fired = []

        def outer():
            engine.schedule_in(5.0, lambda: fired.append(engine.now()))

        engine.schedule_at(10.0, outer)
        engine.run()
        assert fired == [15.0]


class TestEngineExecution:
    def test_step_empty_queue(self, engine):
        assert engine.step() is False

    def test_run_returns_count(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        assert engine.run() == 3
        assert engine.events_processed == 3

    def test_max_events(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        assert engine.run(max_events=2) == 2
        assert engine.pending == 1

    def test_run_until(self, engine):
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run_until(2.0)
        assert fired == [1.0, 2.0]
        assert engine.now() == 2.0
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_when_idle(self, engine):
        engine.run_until(42.0)
        assert engine.now() == 42.0

    def test_stop_inside_callback(self, engine):
        fired = []
        engine.schedule_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]
        # The rest is still runnable afterwards.
        engine.run()
        assert fired == [1, 2]

    def test_run_until_skips_cancelled_head(self, engine):
        event = engine.schedule_at(1.0, lambda: None)
        event.cancel()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append(1))
        engine.run_until(3.0)
        assert fired == [1]
