"""Tests for lossy channels and ARQ reliable delivery."""

import random

import pytest

from repro.errors import ConfigurationError, DeliveryError
from repro.sim.engine import Engine
from repro.sim.messages import BeaconRequest
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.reliable import DeliveryReport, LossModel, ReliableChannel
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


class TestLossModel:
    def test_zero_loss_always_succeeds(self, rng):
        model = LossModel(0.0, rng)
        assert all(model.attempt_succeeds() for _ in range(100))
        assert model.losses == 0

    def test_total_loss_never_succeeds(self, rng):
        model = LossModel(1.0, rng)
        assert not any(model.attempt_succeeds() for _ in range(100))
        assert model.losses == 100

    def test_statistics(self):
        model = LossModel(0.3, random.Random(2))
        n = 5000
        successes = sum(1 for _ in range(n) if model.attempt_succeeds())
        assert successes / n == pytest.approx(0.7, abs=0.03)

    def test_expected_attempts(self, rng):
        assert LossModel(0.5, rng).expected_attempts() == pytest.approx(2.0)
        assert LossModel(1.0, rng).expected_attempts() == float("inf")

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            LossModel(1.5, rng)


class TestReliableChannel:
    def make(self, loss_rate, *, retries=8, seed=3, ack=True):
        engine = Engine()
        channel = ReliableChannel(
            engine,
            LossModel(loss_rate, random.Random(seed)),
            max_retries=retries,
            retry_timeout_cycles=1000.0,
            ack_required=ack,
        )
        return engine, channel

    def test_lossless_delivers_immediately(self):
        engine, channel = self.make(0.0)
        delivered = []
        report = channel.send(lambda: delivered.append(engine.now()))
        assert report.delivered
        assert report.attempts == 1
        assert delivered == [0.0]

    def test_retries_until_success(self):
        engine, channel = self.make(0.6, retries=50)
        delivered = []
        report = channel.send(lambda: delivered.append(1))
        engine.run()
        assert report.delivered
        assert report.attempts >= 1
        assert delivered == [1]

    def test_retry_adds_latency(self):
        engine, channel = self.make(0.9, retries=200, seed=5)
        times = []
        report = channel.send(lambda: times.append(engine.now()))
        engine.run()
        assert report.delivered
        if report.attempts > 1:
            assert times[0] == pytest.approx(
                (report.attempts - 1) * 1000.0
            )

    def test_budget_exhaustion_raises(self):
        engine, channel = self.make(1.0, retries=3)
        failures = []
        with pytest.raises(DeliveryError, match="retry budget exhausted"):
            channel.send(lambda: None, on_failure=lambda: failures.append(1))
        engine.run()
        assert failures == [1]
        assert channel.failed == 1

    def test_budget_exhaustion_report_mode(self):
        engine, channel = self.make(1.0, retries=3)
        failures = []
        report = channel.send(
            lambda: None,
            on_failure=lambda: failures.append(1),
            raise_on_exhaustion=False,
        )
        engine.run()
        assert not report.delivered
        assert report.attempts == 4
        assert failures == [1]
        assert channel.failed == 1

    def test_backoff_grows_timeouts(self):
        engine = Engine()
        channel = ReliableChannel(
            engine,
            LossModel(1.0, random.Random(0)),
            max_retries=2,
            retry_timeout_cycles=100.0,
            backoff_factor=2.0,
        )
        report = channel.send(lambda: None, raise_on_exhaustion=False)
        # Timeouts 100, 200, 400 across the three attempts.
        assert report.completion_time == pytest.approx(700.0)

    def test_channel_counters(self):
        engine, channel = self.make(1.0, retries=2)
        channel.send(lambda: None, raise_on_exhaustion=False)
        assert channel.counters.sends == 1
        assert channel.counters.attempts == 3
        assert channel.counters.retries == 2
        assert channel.counters.failed == 1
        assert channel.counters.to_dict(prefix="x_")["x_attempts"] == 3

    def test_delivery_probability_formula(self):
        _, channel = self.make(0.5, retries=3, ack=False)
        # 1 - 0.5^4
        assert channel.delivery_probability() == pytest.approx(1 - 0.5**4)

    def test_ack_halves_per_attempt_success(self):
        _, with_ack = self.make(0.5, retries=0, ack=True)
        _, without = self.make(0.5, retries=0, ack=False)
        assert with_ack.delivery_probability() == pytest.approx(0.25)
        assert without.delivery_probability() == pytest.approx(0.5)

    def test_empirical_delivery_matches_formula(self):
        engine, channel = self.make(0.5, retries=2, seed=11)
        n = 2000
        delivered = sum(
            1
            for _ in range(n)
            if channel.send(lambda: None, raise_on_exhaustion=False).delivered
        )
        assert delivered / n == pytest.approx(
            channel.delivery_probability(), abs=0.04
        )

    def test_bad_params_rejected(self):
        engine = Engine()
        loss = LossModel(0.1, random.Random(0))
        with pytest.raises(ConfigurationError):
            ReliableChannel(engine, loss, max_retries=-1)
        with pytest.raises(ConfigurationError):
            ReliableChannel(engine, loss, retry_timeout_cycles=0.0)
        with pytest.raises(ConfigurationError):
            ReliableChannel(engine, loss, backoff_factor=0.5)


class TestNetworkLoss:
    def test_lossy_network_drops_deliveries(self):
        engine = Engine()
        net = Network(
            engine,
            rngs=RngRegistry(4),
            loss_model=LossModel(1.0, random.Random(0)),
        )
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(50, 0)))
        got = []
        b.on(BeaconRequest, lambda n, r: got.append(1))
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert got == []

    def test_loss_statistics_on_network(self):
        engine = Engine()
        net = Network(
            engine,
            rngs=RngRegistry(4),
            loss_model=LossModel(0.25, random.Random(1)),
        )
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(50, 0)))
        got = []
        b.on(BeaconRequest, lambda n, r: got.append(1))
        n = 2000
        for _ in range(n):
            net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert len(got) / n == pytest.approx(0.75, abs=0.03)
