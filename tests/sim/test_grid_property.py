"""Property tests: grid spatial queries match a brute-force scan.

Hypothesis drives random fields through ``nodes_within`` /
``beacons_within`` and checks them against the O(N) definition,
deliberately covering the awkward geometry: nodes exactly at the query
radius (the radius is sometimes snapped to an exact node distance),
positions on grid-cell edges (multiples of the 150 ft cell size), and
negative coordinates reached through ``update_position`` mobility moves.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point, distance

#: The default radio range, hence the default grid cell size.
CELL = 150.0

# Coordinates biased toward the awkward spots: exact cell edges
# (multiples of the cell size, positive and negative) and values a hair
# on either side of an edge.
coordinate = st.one_of(
    st.floats(min_value=-450.0, max_value=1200.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(
        [0.0, CELL, 2 * CELL, -CELL, -2 * CELL, 149.99999999, 150.00000001, -0.0]
    ),
)

node_spec = st.tuples(coordinate, coordinate, st.booleans())
field_spec = st.lists(node_spec, min_size=1, max_size=24)


def _build(specs):
    net = Network(Engine(), rngs=RngRegistry(1))
    nodes = [
        net.add_node(Node(i + 1, Point(x, y), is_beacon=beacon))
        for i, (x, y, beacon) in enumerate(specs)
    ]
    return net, nodes


def _brute_force_ids(nodes, center, radius):
    return sorted(
        n.node_id for n in nodes if distance(center, n.position) <= radius
    )


def _assert_queries_match(net, nodes, center, radius):
    assert [
        n.node_id for n in net.nodes_within(center, radius)
    ] == _brute_force_ids(nodes, center, radius)
    beacons = [n for n in nodes if n.is_beacon]
    assert [
        n.node_id for n in net.beacons_within(center, radius)
    ] == _brute_force_ids(beacons, center, radius)


@settings(max_examples=60, deadline=None)
@given(
    specs=field_spec,
    center=st.tuples(coordinate, coordinate),
    radius=st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
    boundary_node=st.integers(min_value=0, max_value=23),
    snap_radius_to_node=st.booleans(),
)
def test_queries_match_brute_force(
    specs, center, radius, boundary_node, snap_radius_to_node
):
    net, nodes = _build(specs)
    c = Point(*center)
    if snap_radius_to_node:
        # Exact-boundary case: the radius IS some node's distance, so
        # that node sits precisely on the query circle.
        radius = distance(c, nodes[boundary_node % len(nodes)].position)
    _assert_queries_match(net, nodes, c, radius)


@settings(max_examples=60, deadline=None)
@given(
    specs=field_spec,
    moves=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), coordinate, coordinate),
        max_size=8,
    ),
    center=st.tuples(coordinate, coordinate),
    radius=st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
)
def test_queries_match_after_mobility(specs, moves, center, radius):
    net, nodes = _build(specs)
    for index, x, y in moves:
        # Moves routinely land at negative coordinates and on cell edges.
        net.update_position(nodes[index % len(nodes)], Point(x, y))
    _assert_queries_match(net, nodes, Point(*center), radius)


@settings(max_examples=30, deadline=None)
@given(specs=field_spec)
def test_partitions_stay_sorted_and_complete(specs):
    net, nodes = _build(specs)
    beacon_ids = [n.node_id for n in net.beacon_nodes()]
    sensor_ids = [n.node_id for n in net.non_beacon_nodes()]
    assert beacon_ids == sorted(n.node_id for n in nodes if n.is_beacon)
    assert sensor_ids == sorted(n.node_id for n in nodes if not n.is_beacon)
    assert len(beacon_ids) + len(sensor_ids) == len(nodes)
