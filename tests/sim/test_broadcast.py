"""Tests for radio broadcast delivery."""

import pytest

from repro.sim.engine import Engine
from repro.sim.messages import DataPacket
from repro.sim.network import Network, WormholeLink
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def make_world(positions, seed=2):
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(seed))
    received = {}
    for i, p in enumerate(positions, start=1):
        node = net.add_node(Node(i, p))
        received[i] = []
        node.on(
            DataPacket,
            lambda n, r, i=i: received[i].append(r),
        )
    return engine, net, received


class TestBroadcast:
    def test_reaches_all_in_range(self):
        engine, net, received = make_world(
            [Point(0, 0), Point(50, 0), Point(100, 0), Point(400, 0)]
        )
        count = net.broadcast(net.node(1), DataPacket(src_id=1, dst_id=0))
        engine.run()
        assert count == 2
        assert len(received[2]) == 1
        assert len(received[3]) == 1
        assert received[4] == []  # out of range

    def test_sender_does_not_hear_itself(self):
        engine, net, received = make_world([Point(0, 0), Point(50, 0)])
        net.broadcast(net.node(1), DataPacket(src_id=1, dst_id=0))
        engine.run()
        assert received[1] == []

    def test_measured_distances_per_receiver(self):
        engine, net, received = make_world([Point(0, 0), Point(50, 0), Point(0, 100)])
        net.ranging_error = lambda d, rng: 0.0
        net.broadcast(net.node(1), DataPacket(src_id=1, dst_id=0))
        engine.run()
        assert received[2][0].measured_distance_ft == pytest.approx(50.0)
        assert received[3][0].measured_distance_ft == pytest.approx(100.0)

    def test_wormhole_replays_broadcast(self):
        engine, net, received = make_world(
            [Point(0, 0), Point(2000, 2010)]
        )
        net.add_wormhole(
            WormholeLink(end_a=Point(10, 0), end_b=Point(2000, 2000))
        )
        count = net.broadcast(net.node(1), DataPacket(src_id=1, dst_id=0))
        engine.run()
        assert count == 1
        assert received[2][0].transmission.via_wormhole is True

    def test_custom_origin(self):
        engine, net, received = make_world([Point(0, 0), Point(500, 0), Point(550, 0)])
        # Transmit from a remote origin (e.g. a replayed broadcast).
        count = net.broadcast(
            net.node(1),
            DataPacket(src_id=1, dst_id=0),
            tx_origin=Point(500, 10),
        )
        engine.run()
        assert count == 2
        assert received[2] and received[3]

    def test_lossy_broadcast_drops_some(self):
        import random

        from repro.sim.reliable import LossModel

        engine = Engine()
        net = Network(
            engine,
            rngs=RngRegistry(1),
            loss_model=LossModel(0.5, random.Random(3)),
        )
        received = []
        net.add_node(Node(1, Point(0, 0)))
        for i in range(2, 42):
            node = net.add_node(Node(i, Point(50 + i, 0)))
            node.on(DataPacket, lambda n, r: received.append(n.node_id))
        net.broadcast(net.node(1), DataPacket(src_id=1, dst_id=0))
        engine.run()
        assert 5 < len(received) < 35  # ~50% loss
