"""Tests for the register-level RTT hardware model (paper Section 2.2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.timing import (
    BIT_TIME_CYCLES,
    RttModel,
    RttSample,
    packet_transmission_cycles,
)


class TestRttSample:
    def test_rtt_formula(self):
        s = RttSample(t1=0.0, t2=100.0, t3=500.0, t4=650.0)
        # (650 - 0) - (500 - 100) = 250
        assert s.rtt == pytest.approx(250.0)

    def test_processing_time_cancels(self):
        base = RttSample(t1=0.0, t2=100.0, t3=500.0, t4=650.0)
        slow = RttSample(t1=0.0, t2=100.0, t3=5000.0, t4=5150.0)
        assert base.rtt == pytest.approx(slow.rtt)


class TestRttModel:
    def test_support_bounds(self, rng):
        model = RttModel()
        rtts = model.sample_rtts(rng, 5000)
        assert min(rtts) >= model.min_rtt()
        assert max(rtts) <= model.max_rtt()

    def test_support_width_matches_paper_margin(self, rng):
        model = RttModel()
        # Theoretical width: 4 * jitter = 4.5 bit times.
        assert model.support_width_bits() == pytest.approx(4.5)
        rtts = model.sample_rtts(rng, 20000)
        measured_bits = (max(rtts) - min(rtts)) / BIT_TIME_CYCLES
        assert measured_bits <= 4.5
        assert measured_bits > 3.5  # empirical width approaches the bound

    def test_replay_delay_visible_in_rtt(self, rng):
        model = RttModel()
        clean = model.sample(rng, distance_ft=50.0)
        replayed = model.sample(
            rng, distance_ft=50.0, extra_delay_cycles=1e5
        )
        assert replayed.rtt > clean.rtt + 9e4

    def test_distance_term_negligible_for_neighbors(self, rng):
        # 2 * 150 ft / c is ~2 cycles, far below the jitter.
        model = RttModel(jitter_cycles=0.0)
        near = model.sample(rng, distance_ft=0.0).rtt
        far = model.sample(rng, distance_ft=150.0).rtt
        assert abs(far - near) < 5.0

    def test_negative_distance_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RttModel().sample(rng, distance_ft=-1.0)

    def test_negative_extra_delay_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RttModel().sample(rng, extra_delay_cycles=-1.0)

    def test_bad_model_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RttModel(base_delay_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            RttModel(jitter_cycles=-1.0)

    def test_sample_rtts_requires_positive_n(self, rng):
        with pytest.raises(ConfigurationError):
            RttModel().sample_rtts(rng, 0)

    def test_timestamps_ordered(self, rng):
        s = RttModel().sample(rng, distance_ft=100.0, start_time=123.0)
        assert s.t1 == 123.0
        assert s.t1 < s.t2 < s.t3 < s.t4

    @given(st.integers(min_value=0, max_value=2**31), st.floats(0, 1000))
    @settings(max_examples=30)
    def test_rtt_always_at_least_min(self, seed, dist):
        model = RttModel()
        sample = model.sample(random.Random(seed), distance_ft=dist)
        assert sample.rtt >= model.min_rtt()


class TestPacketTransmission:
    def test_proportional_to_bits(self):
        assert packet_transmission_cycles(288) == 288 * BIT_TIME_CYCLES

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            packet_transmission_cycles(0)

    def test_one_packet_exceeds_detection_window(self):
        # Section 2.3's core claim: a full-packet replay delay is much
        # larger than the ~4.5-bit honest window, so it is always caught.
        window = 4.5 * BIT_TIME_CYCLES
        assert packet_transmission_cycles(288) > window * 10
