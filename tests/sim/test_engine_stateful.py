"""Stateful property tests for the discrete-event engine.

Invariants under random schedule/step/cancel interleavings:

- the clock never goes backwards;
- events fire in (time, priority, seq) order;
- cancelled events never fire;
- every non-cancelled event scheduled in the past of the final drain fires
  exactly once.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim.engine import Engine


class EngineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.engine = Engine()
        self.fired = []
        self.expected_live = {}
        self.cancelled_ids = set()
        self.handles = {}
        self.counter = 0
        self.last_seen_clock = 0.0

    def _make_action(self, event_id):
        def action():
            self.fired.append((self.engine.now(), event_id))

        return action

    @rule(delay=st.floats(min_value=0.0, max_value=1000.0))
    def schedule(self, delay):
        event_id = self.counter
        self.counter += 1
        handle = self.engine.schedule_in(delay, self._make_action(event_id))
        self.handles[event_id] = handle
        self.expected_live[event_id] = handle.time

    @rule(data=st.data())
    def cancel_something(self, data):
        live = [e for e in self.expected_live if e not in self.cancelled_ids]
        if not live:
            return
        victim = data.draw(st.sampled_from(live))
        fired_ids = {eid for _, eid in self.fired}
        self.handles[victim].cancel()
        if victim not in fired_ids:
            self.cancelled_ids.add(victim)
            del self.expected_live[victim]

    @rule(steps=st.integers(min_value=1, max_value=5))
    def step(self, steps):
        for _ in range(steps):
            if not self.engine.step():
                break

    @invariant()
    def clock_monotone(self):
        assert self.engine.now() >= self.last_seen_clock
        self.last_seen_clock = self.engine.now()

    @invariant()
    def fired_in_time_order(self):
        times = [t for t, _ in self.fired]
        assert times == sorted(times)

    @invariant()
    def cancelled_never_fire(self):
        fired_ids = {eid for _, eid in self.fired}
        assert not (fired_ids & self.cancelled_ids)

    @invariant()
    def no_double_fire(self):
        fired_ids = [eid for _, eid in self.fired]
        assert len(fired_ids) == len(set(fired_ids))

    def teardown(self):
        # Drain everything; every live event must fire exactly once.
        self.engine.run()
        fired_ids = {eid for _, eid in self.fired}
        assert fired_ids == set(self.expected_live)


TestEngineMachine = EngineMachine.TestCase
TestEngineMachine.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
