"""Tests for network topology and delivery semantics."""

import pytest

from repro.errors import ConfigurationError, DeliveryError
from repro.sim.engine import Engine
from repro.sim.messages import BeaconPacket, BeaconRequest
from repro.sim.network import Network, WormholeLink, uniform_ranging_error
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def make_network(engine=None, **kwargs):
    kwargs.setdefault("rngs", RngRegistry(5))
    return Network(engine or Engine(), **kwargs)


def collect_receptions(node):
    received = []
    node.on(BeaconRequest, lambda n, r: received.append(r))
    node.on(BeaconPacket, lambda n, r: received.append(r))
    return received


class TestTopology:
    def test_duplicate_id_rejected(self):
        net = make_network()
        net.add_node(Node(1, Point(0, 0)))
        with pytest.raises(ConfigurationError):
            net.add_node(Node(1, Point(5, 5)))

    def test_unknown_node_lookup(self):
        with pytest.raises(DeliveryError):
            make_network().node(42)

    def test_role_partitions(self):
        net = make_network()
        net.add_node(Node(1, Point(0, 0), is_beacon=True))
        net.add_node(Node(2, Point(1, 1)))
        assert [n.node_id for n in net.beacon_nodes()] == [1]
        assert [n.node_id for n in net.non_beacon_nodes()] == [2]

    def test_neighbors_respect_range(self):
        net = make_network()
        a = net.add_node(Node(1, Point(0, 0)))
        net.add_node(Node(2, Point(100, 0)))
        net.add_node(Node(3, Point(151, 0)))  # beyond 150 ft default
        assert [n.node_id for n in net.neighbors_of(a)] == [2]

    def test_nodes_within_grid_spans_cells(self):
        net = make_network()
        for i, x in enumerate((0, 149, 299, 449), start=1):
            net.add_node(Node(i, Point(x, 0)))
        found = net.nodes_within(Point(0, 0), 300)
        assert [n.node_id for n in found] == [1, 2, 3]

    def test_alias_routes_to_owner(self):
        net = make_network()
        owner = net.add_node(Node(1, Point(0, 0)))
        net.add_alias(1_000_000, 1)
        assert net.node(1_000_000) is owner

    def test_alias_collision_rejected(self):
        net = make_network()
        net.add_node(Node(1, Point(0, 0)))
        net.add_alias(50, 1)
        with pytest.raises(ConfigurationError):
            net.add_alias(50, 1)

    def test_alias_to_unknown_node_rejected(self):
        net = make_network()
        with pytest.raises(DeliveryError):
            net.add_alias(50, 99)


class TestUnicast:
    def test_in_range_delivery(self):
        engine = Engine()
        net = make_network(engine)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(50, 0)))
        received = collect_receptions(b)
        assert a.send(BeaconRequest(src_id=1, dst_id=2)) is None  # via Node.send
        engine.run()
        assert len(received) == 1
        assert received[0].packet.src_id == 1

    def test_out_of_range_dropped(self):
        engine = Engine()
        net = make_network(engine)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(500, 0)))
        received = collect_receptions(b)
        ok = net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert ok is False
        assert received == []

    def test_out_of_range_raises_when_strict(self):
        engine = Engine()
        net = make_network(engine, drop_out_of_range=False)
        a = net.add_node(Node(1, Point(0, 0)))
        net.add_node(Node(2, Point(500, 0)))
        with pytest.raises(DeliveryError):
            net.unicast(a, BeaconRequest(src_id=1, dst_id=2))

    def test_measured_distance_within_error_bound(self):
        engine = Engine()
        net = make_network(engine, max_ranging_error_ft=10.0)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(100, 0)))
        received = collect_receptions(b)
        for _ in range(20):
            net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert len(received) == 20
        for r in received:
            assert abs(r.measured_distance_ft - 100.0) <= 10.0

    def test_ranging_bias_applied(self):
        engine = Engine()
        net = make_network(engine, ranging_error_model=lambda d, rng: 0.0)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(100, 0)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2), ranging_bias_ft=42.0)
        engine.run()
        assert received[0].measured_distance_ft == pytest.approx(142.0)

    def test_measured_distance_never_negative(self):
        engine = Engine()
        net = make_network(engine, ranging_error_model=lambda d, rng: 0.0)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(10, 0)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2), ranging_bias_ft=-500.0)
        engine.run()
        assert received[0].measured_distance_ft == 0.0

    def test_delivery_delay_positive(self):
        engine = Engine()
        net = make_network(engine)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(100, 0)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert received[0].arrival_time > 0.0

    def test_extra_delay_shifts_arrival(self):
        engine = Engine()
        net = make_network(engine)
        a = net.add_node(Node(1, Point(0, 0)))
        b = net.add_node(Node(2, Point(100, 0)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2), extra_delay_cycles=1e6)
        engine.run()
        assert received[1].arrival_time - received[0].arrival_time == (
            pytest.approx(1e6)
        )


class TestWormholeDelivery:
    def _tunnel_net(self):
        engine = Engine()
        net = make_network(engine)
        net.add_wormhole(
            WormholeLink(end_a=Point(0, 0), end_b=Point(1000, 1000))
        )
        return engine, net

    def test_tunnel_bridges_far_nodes(self):
        engine, net = self._tunnel_net()
        a = net.add_node(Node(1, Point(10, 0)))
        b = net.add_node(Node(2, Point(1000, 1010)))
        received = collect_receptions(b)
        ok = net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert ok is True
        assert len(received) == 1
        assert received[0].transmission.via_wormhole is True

    def test_tunnelled_distance_measured_from_far_end(self):
        engine, net = self._tunnel_net()
        net.ranging_error = lambda d, rng: 0.0
        a = net.add_node(Node(1, Point(10, 0)))
        b = net.add_node(Node(2, Point(1000, 1010)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        # Distance from tunnel exit (1000,1000) to (1000,1010) = 10 ft.
        assert received[0].measured_distance_ft == pytest.approx(10.0)

    def test_near_nodes_get_direct_and_tunnelled_copy(self):
        engine, net = self._tunnel_net()
        a = net.add_node(Node(1, Point(10, 0)))
        b = net.add_node(Node(2, Point(60, 0)))  # near end_a too
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        # One direct copy; no tunnelled copy (dst not near far end).
        assert len(received) == 1
        assert received[0].transmission.via_wormhole is False

    def test_allow_wormhole_false_disables_tunnel(self):
        engine, net = self._tunnel_net()
        a = net.add_node(Node(1, Point(10, 0)))
        b = net.add_node(Node(2, Point(1000, 1010)))
        received = collect_receptions(b)
        ok = net.unicast(a, BeaconRequest(src_id=1, dst_id=2), allow_wormhole=False)
        engine.run()
        assert ok is False
        assert received == []

    def test_tunnel_latency_adds_delay(self):
        engine = Engine()
        net = make_network(engine)
        net.add_wormhole(
            WormholeLink(
                end_a=Point(0, 0), end_b=Point(1000, 1000), latency_cycles=5e5
            )
        )
        a = net.add_node(Node(1, Point(10, 0)))
        b = net.add_node(Node(2, Point(1000, 1010)))
        received = collect_receptions(b)
        net.unicast(a, BeaconRequest(src_id=1, dst_id=2))
        engine.run()
        assert received[0].transmission.extra_delay_cycles == pytest.approx(5e5)

    def test_wormhole_between(self):
        _, net = self._tunnel_net()
        assert net.wormhole_between(Point(10, 0), Point(1000, 1010)) is not None
        assert net.wormhole_between(Point(10, 0), Point(500, 500)) is None


class TestSpatialIndex:
    def test_beacons_within_matches_filtered_nodes_within(self):
        net = make_network()
        for i in range(1, 13):
            net.add_node(
                Node(i, Point(i * 40.0, (i % 3) * 90.0), is_beacon=i % 2 == 0)
            )
        center = Point(200.0, 90.0)
        expected = [
            n.node_id for n in net.nodes_within(center, 220.0) if n.is_beacon
        ]
        assert [n.node_id for n in net.beacons_within(center, 220.0)] == expected

    def test_partitions_sorted_despite_insertion_order(self):
        net = make_network()
        for node_id in (7, 2, 9, 4):
            net.add_node(Node(node_id, Point(0, 0), is_beacon=True))
        for node_id in (8, 1):
            net.add_node(Node(node_id, Point(0, 0)))
        assert [n.node_id for n in net.beacon_nodes()] == [2, 4, 7, 9]
        assert [n.node_id for n in net.non_beacon_nodes()] == [1, 8]

    def test_partition_views_cached_until_topology_changes(self):
        net = make_network()
        net.add_node(Node(1, Point(0, 0), is_beacon=True))
        first = net.beacon_nodes()
        assert net.beacon_nodes() is first  # cached tuple, no rebuild
        net.add_node(Node(2, Point(0, 0), is_beacon=True))
        rebuilt = net.beacon_nodes()
        assert rebuilt is not first
        assert [n.node_id for n in rebuilt] == [1, 2]

    def test_beacons_within_tracks_mobility(self):
        net = make_network()
        beacon = net.add_node(Node(1, Point(0, 0), is_beacon=True))
        assert [n.node_id for n in net.beacons_within(Point(500, 500), 100)] == []
        net.update_position(beacon, Point(480.0, 480.0))
        assert [n.node_id for n in net.beacons_within(Point(500, 500), 100)] == [1]
        assert [n.node_id for n in net.beacons_within(Point(0, 0), 100)] == []

    def test_wormhole_reachable_beacon_ids(self):
        net = make_network()
        net.add_wormhole(WormholeLink(end_a=Point(0, 0), end_b=Point(1000, 1000)))
        net.add_node(Node(1, Point(30, 0), is_beacon=True))  # near end_a
        net.add_node(Node(2, Point(1010, 1000), is_beacon=True))  # near end_b
        net.add_node(Node(3, Point(500, 500), is_beacon=True))  # near neither
        net.add_node(Node(4, Point(1020, 1000)))  # near end_b, not a beacon
        assert net.wormhole_reachable_beacon_ids(Point(10, 10)) == {2}
        assert net.wormhole_reachable_beacon_ids(Point(990, 990)) == {1}
        assert net.wormhole_reachable_beacon_ids(Point(500, 500)) == frozenset()

    def test_wormhole_reachability_agrees_with_wormhole_between(self):
        net = make_network()
        net.add_wormhole(WormholeLink(end_a=Point(0, 0), end_b=Point(1000, 1000)))
        beacons = [
            net.add_node(Node(i, p, is_beacon=True))
            for i, p in enumerate(
                [Point(40, 40), Point(960, 1000), Point(400, 400), Point(80, 0)],
                start=1,
            )
        ]
        for probe in (Point(20, 0), Point(1000, 950), Point(600, 600)):
            via_index = net.wormhole_reachable_beacon_ids(probe)
            via_pairs = {
                b.node_id
                for b in beacons
                if net.wormhole_between(probe, b.position) is not None
            }
            assert via_index == via_pairs

    def test_wormhole_endpoint_cache_invalidated_by_move(self):
        net = make_network()
        net.add_wormhole(WormholeLink(end_a=Point(0, 0), end_b=Point(1000, 1000)))
        beacon = net.add_node(Node(1, Point(1010, 1000), is_beacon=True))
        assert net.wormhole_reachable_beacon_ids(Point(10, 0)) == {1}
        net.update_position(beacon, Point(500, 500))  # out of endpoint range
        assert net.wormhole_reachable_beacon_ids(Point(10, 0)) == frozenset()

    def test_wormhole_endpoint_cache_invalidated_by_add(self):
        net = make_network()
        net.add_wormhole(WormholeLink(end_a=Point(0, 0), end_b=Point(1000, 1000)))
        assert net.wormhole_reachable_beacon_ids(Point(10, 0)) == frozenset()
        net.add_node(Node(1, Point(990, 1000), is_beacon=True))
        assert net.wormhole_reachable_beacon_ids(Point(10, 0)) == {1}

    def test_counters_move(self):
        net = make_network()
        net.add_node(Node(1, Point(10, 0), is_beacon=True))
        before = net.stats.spatial_queries
        net.nodes_within(Point(0, 0), 100)
        net.beacons_within(Point(0, 0), 100)
        assert net.stats.spatial_queries == before + 2
        assert net.stats.distance_evals >= 2


class TestUniformRangingError:
    def test_bounds(self, rng):
        model = uniform_ranging_error(7.0)
        for _ in range(100):
            assert -7.0 <= model(100.0, rng) <= 7.0

    def test_rejects_negative_bound(self):
        with pytest.raises(ConfigurationError):
            uniform_ranging_error(-1.0)
