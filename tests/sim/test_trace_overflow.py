"""TraceRecorder overflow: dropped counter, warn-once, spill-to-JSONL.

Before this layer existed the recorder silently discarded events past
``capacity`` — a run could look healthy while missing the evidence. The
contract now: overflow is counted (``dropped``), warned about exactly
once, and optionally preserved by spilling to a JSONL sink.
"""

import json
import warnings

import pytest

from repro.sim.trace import TraceRecorder


def _fill(recorder, n, kind="tick"):
    for i in range(n):
        recorder.record(float(i), kind, seq=i)


class TestDropCounting:
    def test_drops_counted_past_capacity(self):
        recorder = TraceRecorder(enabled=True, capacity=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _fill(recorder, 10)
        assert len(recorder) == 3
        assert recorder.dropped == 7
        assert recorder.spilled == 0

    def test_no_drops_under_capacity(self):
        recorder = TraceRecorder(enabled=True, capacity=10)
        _fill(recorder, 5)
        assert recorder.dropped == 0

    def test_clear_resets_overflow_state(self):
        recorder = TraceRecorder(enabled=True, capacity=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _fill(recorder, 3)
        recorder.clear()
        assert recorder.dropped == 0
        with pytest.warns(RuntimeWarning):
            _fill(recorder, 3)  # warn-once latch reset too


class TestWarnOnce:
    def test_warns_exactly_once(self):
        recorder = TraceRecorder(enabled=True, capacity=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _fill(recorder, 8)
        overflow_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(overflow_warnings) == 1
        assert "capacity 2 reached" in str(overflow_warnings[0].message)

    def test_warning_mentions_spill_hint_without_sink(self):
        recorder = TraceRecorder(enabled=True, capacity=1)
        with pytest.warns(RuntimeWarning, match="spill_path"):
            _fill(recorder, 2)


class TestSpill:
    def test_overflow_spills_to_jsonl(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        recorder = TraceRecorder(enabled=True, capacity=2, spill_path=spill)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _fill(recorder, 5)
        recorder.close()
        assert recorder.spilled == 3
        assert recorder.dropped == 0
        lines = spill.read_text().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["kind"] == "tick"
        assert first["seq"] == 2  # in-memory kept 0 and 1

    def test_spill_file_created_lazily(self, tmp_path):
        spill = tmp_path / "nested" / "spill.jsonl"
        recorder = TraceRecorder(enabled=True, capacity=10, spill_path=spill)
        _fill(recorder, 3)
        recorder.close()
        assert not spill.exists()  # never overflowed, never opened
