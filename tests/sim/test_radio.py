"""Tests for the radio propagation/airtime model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.messages import BeaconPacket
from repro.sim.radio import (
    RadioModel,
    SPEED_OF_LIGHT_FT_PER_CYCLE,
    Transmission,
)
from repro.sim.timing import BIT_TIME_CYCLES
from repro.utils.geometry import Point


class TestRadioModel:
    def test_in_range(self):
        r = RadioModel(comm_range_ft=100.0)
        assert r.in_range(Point(0, 0), Point(100, 0))
        assert not r.in_range(Point(0, 0), Point(100.1, 0))

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ConfigurationError):
            RadioModel(comm_range_ft=0.0)

    def test_rejects_nonpositive_bit_time(self):
        with pytest.raises(ConfigurationError):
            RadioModel(bit_time_cycles=0.0)

    def test_airtime_scales_with_size(self):
        r = RadioModel()
        small = BeaconPacket(src_id=1, dst_id=2)
        big = BeaconPacket(src_id=1, dst_id=2)
        big.size_bits = small.size_bits * 2
        assert r.airtime_cycles(big) > r.airtime_cycles(small)

    def test_airtime_includes_preamble(self):
        r = RadioModel(preamble_bits=24)
        p = BeaconPacket(src_id=1, dst_id=2)
        assert r.airtime_cycles(p) == (p.size_bits + 24) * BIT_TIME_CYCLES

    def test_propagation_negligible_at_neighbor_range(self):
        # The paper's D/c argument: propagation over 150 ft is ~1 cycle.
        r = RadioModel()
        assert r.propagation_cycles(150.0) < 2.0

    def test_propagation_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            RadioModel().propagation_cycles(-1.0)

    def test_packet_time_is_sum(self):
        r = RadioModel()
        p = BeaconPacket(src_id=1, dst_id=2)
        assert r.packet_time_cycles(p, 100.0) == pytest.approx(
            r.airtime_cycles(p) + 100.0 / SPEED_OF_LIGHT_FT_PER_CYCLE
        )


class TestTransmission:
    def _tx(self, **kwargs):
        defaults = dict(
            packet=BeaconPacket(src_id=1, dst_id=2),
            tx_origin=Point(0, 0),
            departure_time=0.0,
        )
        defaults.update(kwargs)
        return Transmission(**defaults)

    def test_clean_is_not_replayed(self):
        assert not self._tx().is_replayed()

    def test_local_replay_flag(self):
        assert self._tx(replayed_by=99).is_replayed()

    def test_wormhole_flag(self):
        assert self._tx(via_wormhole=True).is_replayed()

    def test_fake_symptoms_do_not_mark_replayed(self):
        # Faked symptoms are a lie by the sender, not an actual replay.
        assert not self._tx(fake_wormhole_symptoms=True).is_replayed()
