"""Tests for the random-waypoint mobility model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import seconds_to_cycles
from repro.sim.engine import Engine
from repro.sim.mobility import RandomWaypointWalker, WaypointConfig, start_walkers
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point


def make_world():
    engine = Engine()
    net = Network(engine, rngs=RngRegistry(6))
    node = net.add_node(Node(1, Point(500.0, 500.0)))
    return engine, net, node


CFG = WaypointConfig(
    field_width_ft=1000.0,
    field_height_ft=1000.0,
    speed_min_ft_s=10.0,
    speed_max_ft_s=20.0,
    step_s=1.0,
)


class TestWaypointConfig:
    def test_bad_speeds_rejected(self):
        with pytest.raises(ConfigurationError):
            WaypointConfig(speed_min_ft_s=0.0)
        with pytest.raises(ConfigurationError):
            WaypointConfig(speed_min_ft_s=5.0, speed_max_ft_s=1.0)

    def test_bad_field_rejected(self):
        with pytest.raises(ConfigurationError):
            WaypointConfig(field_width_ft=0.0)


class TestWalker:
    def test_node_moves(self):
        engine, net, node = make_world()
        start = node.position
        walker = RandomWaypointWalker(net, node, CFG, random.Random(1))
        walker.start()
        engine.run_until(seconds_to_cycles(30.0))
        assert node.position.distance_to(start) > 50.0

    def test_speed_respected(self):
        engine, net, node = make_world()
        walker = RandomWaypointWalker(net, node, CFG, random.Random(2))
        walker.start()
        previous = node.position
        engine.run_until(seconds_to_cycles(1.5))
        moved = node.position.distance_to(previous)
        # One 1-second step at <= 20 ft/s.
        assert moved <= 20.0 + 1e-6

    def test_stays_in_field(self):
        engine, net, node = make_world()
        walker = RandomWaypointWalker(net, node, CFG, random.Random(3))
        walker.start()
        for _ in range(60):
            engine.run_until(engine.now() + seconds_to_cycles(1.0))
            assert 0.0 <= node.position.x <= 1000.0
            assert 0.0 <= node.position.y <= 1000.0

    def test_visits_waypoints(self):
        engine, net, node = make_world()
        fast = WaypointConfig(
            field_width_ft=100.0,
            field_height_ft=100.0,
            speed_min_ft_s=50.0,
            speed_max_ft_s=50.0,
        )
        walker = RandomWaypointWalker(net, node, fast, random.Random(4))
        walker.start()
        engine.run_until(seconds_to_cycles(60.0))
        assert walker.waypoints_visited >= 3

    def test_stop_freezes(self):
        engine, net, node = make_world()
        walker = RandomWaypointWalker(net, node, CFG, random.Random(5))
        walker.start()
        engine.run_until(seconds_to_cycles(5.0))
        walker.stop()
        frozen = node.position
        engine.run_until(seconds_to_cycles(30.0))
        assert node.position == frozen

    def test_neighbor_index_follows_movement(self):
        engine, net, node = make_world()
        anchor = net.add_node(Node(2, Point(0.0, 0.0)))
        # Drag the node next to the anchor manually via update_position.
        net.update_position(node, Point(10.0, 0.0))
        assert anchor in net.neighbors_of(node)
        net.update_position(node, Point(900.0, 900.0))
        assert anchor not in net.neighbors_of(node)

    def test_start_walkers_helper(self):
        engine, net, node = make_world()
        other = net.add_node(Node(2, Point(100.0, 100.0)))
        walkers = start_walkers(net, [node, other], CFG, random.Random(7))
        assert len(walkers) == 2
        engine.run_until(seconds_to_cycles(10.0))
        assert all(w.waypoints_visited >= 0 for w in walkers)
