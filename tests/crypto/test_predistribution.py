"""Tests for key predistribution schemes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.predistribution import (
    BlomScheme,
    EschenauerGligorScheme,
    FullPairwiseScheme,
    QCompositeScheme,
)
from repro.errors import ConfigurationError, KeyAgreementError


class TestEschenauerGligor:
    def make(self, pool=100, ring=30, seed=0):
        return EschenauerGligorScheme(pool, ring, random.Random(seed))

    def test_issue_idempotent(self):
        s = self.make()
        assert s.issue(1).key_ids == s.issue(1).key_ids

    def test_ring_size(self):
        s = self.make(pool=50, ring=10)
        assert len(s.issue(1).key_ids) == 10

    def test_pairwise_key_symmetric(self):
        s = self.make()
        s.issue(1)
        s.issue(2)
        if s.can_communicate(1, 2):
            assert s.pairwise_key(1, 2) == s.pairwise_key(2, 1)

    def test_disjoint_rings_fail(self):
        # Pool 20, ring 10: force two disjoint rings by construction.
        s = self.make(pool=20, ring=10)
        s._rings[1] = type(s.issue(99))(node_id=1, key_ids=frozenset(range(10)))
        s._rings[2] = type(s.issue(98))(node_id=2, key_ids=frozenset(range(10, 20)))
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(1, 2)

    def test_unissued_node_fails(self):
        s = self.make()
        s.issue(1)
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(1, 42)

    def test_full_ring_always_connects(self):
        s = self.make(pool=10, ring=10)
        s.issue(1)
        s.issue(2)
        assert s.can_communicate(1, 2)
        assert s.connectivity_probability() == pytest.approx(1.0)

    def test_connectivity_formula_matches_empirical(self):
        s = self.make(pool=100, ring=15, seed=3)
        for node_id in range(200):
            s.issue(node_id)
        pairs = 0
        connected = 0
        for a in range(0, 200, 2):
            b = a + 1
            pairs += 1
            if s.can_communicate(a, b):
                connected += 1
        predicted = s.connectivity_probability()
        assert connected / pairs == pytest.approx(predicted, abs=0.12)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(pool=0, ring=0)
        with pytest.raises(ConfigurationError):
            self.make(pool=10, ring=11)

    def test_distinct_pairs_distinct_keys(self):
        s = self.make(pool=10, ring=10)
        for i in (1, 2, 3):
            s.issue(i)
        assert s.pairwise_key(1, 2) != s.pairwise_key(1, 3)


class TestQComposite:
    def test_requires_q_shared(self):
        s = QCompositeScheme(20, 10, 3, random.Random(0))
        ring_cls = type(s.issue(99))
        s._rings[1] = ring_cls(node_id=1, key_ids=frozenset({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}))
        s._rings[2] = ring_cls(node_id=2, key_ids=frozenset({0, 1, 10, 11, 12, 13, 14, 15, 16, 17}))
        # Only 2 shared keys < q=3.
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(1, 2)

    def test_enough_overlap_succeeds(self):
        s = QCompositeScheme(10, 10, 3, random.Random(0))
        s.issue(1)
        s.issue(2)
        assert s.can_communicate(1, 2)

    def test_q_exceeding_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            QCompositeScheme(20, 5, 6, random.Random(0))

    def test_q_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            QCompositeScheme(20, 5, 0, random.Random(0))


class TestBlom:
    def test_every_pair_agrees(self):
        s = BlomScheme(4, random.Random(1))
        for i in range(10):
            s.issue(i)
        for a in range(10):
            for b in range(a + 1, 10):
                assert s.pairwise_key(a, b) == s.pairwise_key(b, a)

    def test_scalar_symmetric(self):
        s = BlomScheme(4, random.Random(1))
        s.issue(3)
        s.issue(7)
        assert s.key_scalar(3, 7) == s.key_scalar(7, 3)

    def test_distinct_pairs_distinct_scalars(self):
        s = BlomScheme(6, random.Random(2))
        for i in (1, 2, 3):
            s.issue(i)
        assert s.key_scalar(1, 2) != s.key_scalar(1, 3)

    def test_unissued_fails(self):
        s = BlomScheme(2, random.Random(0))
        s.issue(1)
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(1, 2)
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(2, 1)

    def test_lambda_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BlomScheme(0, random.Random(0))

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=500))
    @settings(max_examples=25)
    def test_symmetry_property(self, a, b):
        s = BlomScheme(3, random.Random(7))
        s.issue(a)
        s.issue(b)
        assert s.key_scalar(a, b) == s.key_scalar(b, a)


class TestFullPairwise:
    def test_always_connects_issued(self):
        s = FullPairwiseScheme()
        s.issue(1)
        s.issue(2)
        assert s.can_communicate(1, 2)
        assert s.pairwise_key(1, 2) == s.pairwise_key(2, 1)

    def test_unissued_fails(self):
        s = FullPairwiseScheme()
        s.issue(1)
        with pytest.raises(KeyAgreementError):
            s.pairwise_key(1, 2)

    def test_master_secret_matters(self):
        a = FullPairwiseScheme(b"secret-a")
        b = FullPairwiseScheme(b"secret-b")
        for s in (a, b):
            s.issue(1)
            s.issue(2)
        assert a.pairwise_key(1, 2) != b.pairwise_key(1, 2)
