"""Tests for the KeyManager and KeyRing."""

import pytest

from repro.crypto.keyring import KeyRing
from repro.crypto.manager import DEFAULT_DETECTING_ID_BASE, KeyManager
from repro.crypto.predistribution import FullPairwiseScheme
from repro.errors import AuthenticationError, ConfigurationError, KeyAgreementError
from repro.sim.messages import BeaconPacket, BeaconRequest


class TestEnrollment:
    def test_enroll_idempotent(self, key_manager):
        r1 = key_manager.enroll(1)
        r2 = key_manager.enroll(1)
        assert r1 is r2

    def test_beacon_flag(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2)
        assert key_manager.is_beacon_id(1)
        assert not key_manager.is_beacon_id(2)

    def test_id_collision_with_detecting_range(self, key_manager):
        with pytest.raises(ConfigurationError):
            key_manager.enroll(DEFAULT_DETECTING_ID_BASE + 5)

    def test_unenrolled_ring_fails(self, key_manager):
        with pytest.raises(KeyAgreementError):
            key_manager.ring(42)


class TestDetectingIds:
    def test_allocation(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        ids = key_manager.allocate_detecting_ids(1, 3)
        assert len(ids) == 3
        assert all(key_manager.is_detecting_id(i) for i in ids)
        assert all(not key_manager.is_beacon_id(i) for i in ids)

    def test_allocation_idempotent(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        first = key_manager.allocate_detecting_ids(1, 2)
        second = key_manager.allocate_detecting_ids(1, 2)
        assert first == second

    def test_topping_up(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        two = key_manager.allocate_detecting_ids(1, 2)
        four = key_manager.allocate_detecting_ids(1, 4)
        assert four[:2] == two

    def test_owner_lookup(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        (did,) = key_manager.allocate_detecting_ids(1, 1)
        assert key_manager.owner_of_detecting_id(did) == 1

    def test_owner_of_unknown_id_fails(self, key_manager):
        with pytest.raises(ConfigurationError):
            key_manager.owner_of_detecting_id(999)

    def test_non_beacon_cannot_hold_detecting_ids(self, key_manager):
        key_manager.enroll(2)
        with pytest.raises(ConfigurationError):
            key_manager.allocate_detecting_ids(2, 1)

    def test_negative_m_rejected(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        with pytest.raises(ConfigurationError):
            key_manager.allocate_detecting_ids(1, -1)

    def test_detecting_id_can_communicate(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2, is_beacon=True)
        (did,) = key_manager.allocate_detecting_ids(1, 1)
        assert key_manager.pairwise_key(did, 2)

    def test_ids_unique_across_beacons(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2, is_beacon=True)
        ids1 = key_manager.allocate_detecting_ids(1, 4)
        ids2 = key_manager.allocate_detecting_ids(2, 4)
        assert not set(ids1) & set(ids2)


class TestPacketAuth:
    def test_sign_verify_roundtrip(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2)
        packet = BeaconPacket(src_id=1, dst_id=2, claimed_location=(1.0, 2.0))
        assert key_manager.verify(key_manager.sign(packet))

    def test_tampering_detected(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2)
        signed = key_manager.sign(
            BeaconPacket(src_id=1, dst_id=2, claimed_location=(1.0, 2.0))
        )
        signed.claimed_location = (9.0, 9.0)
        assert not key_manager.verify(signed)

    def test_unsigned_fails(self, key_manager):
        key_manager.enroll(1)
        key_manager.enroll(2)
        assert not key_manager.verify(BeaconRequest(src_id=1, dst_id=2))

    def test_unknown_identity_fails_closed(self, key_manager):
        key_manager.enroll(1)
        packet = BeaconRequest(src_id=99, dst_id=1)
        packet.auth_tag = b"12345678"
        assert not key_manager.verify(packet)

    def test_require_valid_raises(self, key_manager):
        key_manager.enroll(1)
        key_manager.enroll(2)
        with pytest.raises(AuthenticationError):
            key_manager.require_valid(BeaconRequest(src_id=1, dst_id=2))

    def test_tag_bound_to_direction_pair(self, key_manager):
        key_manager.enroll(1)
        key_manager.enroll(2)
        key_manager.enroll(3)
        signed = key_manager.sign(BeaconRequest(src_id=1, dst_id=2))
        # Re-addressing the packet to someone else invalidates it.
        signed.dst_id = 3
        assert not key_manager.verify(signed)


class TestBaseStationKeys:
    def test_beacons_have_bs_keys(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        assert key_manager.base_station_key(1)

    def test_non_beacons_do_not(self, key_manager):
        key_manager.enroll(2)
        with pytest.raises(KeyAgreementError):
            key_manager.base_station_key(2)

    def test_keys_unique_per_beacon(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        key_manager.enroll(2, is_beacon=True)
        assert key_manager.base_station_key(1) != key_manager.base_station_key(2)

    def test_alert_payload_roundtrip(self, key_manager):
        key_manager.enroll(1, is_beacon=True)
        tag = key_manager.sign_alert_payload(1, b"alert:1:5")
        assert key_manager.verify_alert_payload(1, b"alert:1:5", tag)
        assert not key_manager.verify_alert_payload(1, b"alert:1:6", tag)

    def test_alert_verify_unknown_beacon_fails_closed(self, key_manager):
        assert not key_manager.verify_alert_payload(42, b"x", b"y")


class TestKeyRing:
    def test_cache(self):
        scheme = FullPairwiseScheme()
        ring = KeyRing(1, scheme)
        scheme.issue(2)
        k1 = ring.pairwise_key_with(2)
        assert ring.pairwise_key_with(2) == k1
        assert ring.established_peers() == [2]

    def test_forget(self):
        scheme = FullPairwiseScheme()
        ring = KeyRing(1, scheme)
        scheme.issue(2)
        ring.pairwise_key_with(2)
        ring.forget(2)
        assert ring.established_peers() == []

    def test_can_communicate_false_for_unissued(self):
        ring = KeyRing(1, FullPairwiseScheme())
        assert not ring.can_communicate_with(99)
