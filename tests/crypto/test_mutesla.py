"""Tests for µTESLA broadcast authentication."""

import pytest

from repro.crypto.mutesla import (
    KeyChain,
    MuTeslaBroadcaster,
    MuTeslaTag,
    MuTeslaVerifier,
)
from repro.errors import AuthenticationError, ConfigurationError

INTERVAL = 1000.0


def make_pair(length=50, lag=2, start=0.0):
    chain = KeyChain(
        b"seed", length, interval_cycles=INTERVAL, start_time=start,
        disclosure_lag=lag,
    )
    sender = MuTeslaBroadcaster(1, chain)
    receiver = MuTeslaVerifier(
        chain.commitment,
        interval_cycles=INTERVAL,
        start_time=start,
        disclosure_lag=lag,
    )
    return chain, sender, receiver


class TestKeyChain:
    def test_one_way_property(self):
        chain = KeyChain(b"s", 10, interval_cycles=INTERVAL)
        from repro.crypto.mutesla import _chain_step

        for i in range(1, 11):
            assert _chain_step(chain.key_for_interval(i)) == (
                chain.commitment
                if i == 1
                else chain.key_for_interval(i - 1)
            )

    def test_interval_at(self):
        chain = KeyChain(b"s", 10, interval_cycles=INTERVAL, start_time=500.0)
        assert chain.interval_at(500.0) == 0
        assert chain.interval_at(1499.9) == 0
        assert chain.interval_at(1500.0) == 1

    def test_time_before_start_rejected(self):
        chain = KeyChain(b"s", 10, interval_cycles=INTERVAL, start_time=500.0)
        with pytest.raises(ConfigurationError):
            chain.interval_at(100.0)

    def test_interval_bounds(self):
        chain = KeyChain(b"s", 10, interval_cycles=INTERVAL)
        with pytest.raises(ConfigurationError):
            chain.key_for_interval(0)
        with pytest.raises(ConfigurationError):
            chain.key_for_interval(11)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            KeyChain(b"s", 0, interval_cycles=INTERVAL)
        with pytest.raises(ConfigurationError):
            KeyChain(b"s", 5, interval_cycles=0.0)
        with pytest.raises(ConfigurationError):
            KeyChain(b"s", 5, interval_cycles=INTERVAL, disclosure_lag=0)

    def test_different_seeds_different_chains(self):
        a = KeyChain(b"a", 5, interval_cycles=INTERVAL)
        b = KeyChain(b"b", 5, interval_cycles=INTERVAL)
        assert a.commitment != b.commitment


class TestBroadcaster:
    def test_interval_zero_cannot_authenticate(self):
        _, sender, _ = make_pair()
        with pytest.raises(AuthenticationError):
            sender.authenticate(b"msg", now=100.0)

    def test_exhausted_chain_rejected(self):
        _, sender, _ = make_pair(length=3)
        with pytest.raises(AuthenticationError):
            sender.authenticate(b"msg", now=10 * INTERVAL)

    def test_disclosure_respects_lag(self):
        _, sender, _ = make_pair(lag=2)
        assert sender.disclose(now=INTERVAL) is None  # interval 1, nothing old
        disclosed = sender.disclose(now=3 * INTERVAL)  # interval 3 -> key 1
        assert disclosed is not None
        assert disclosed[0] == 1

    def test_disclosure_caps_at_chain_length(self):
        _, sender, _ = make_pair(length=3, lag=1)
        interval, _key = sender.disclose(now=50 * INTERVAL)
        assert interval == 3


class TestEndToEnd:
    def test_authenticate_then_verify(self):
        _, sender, receiver = make_pair()
        tag = sender.authenticate(b"alert", now=1.5 * INTERVAL)
        assert receiver.buffer(b"alert", tag, arrival_time=1.6 * INTERVAL)
        assert receiver.release_verified() == []  # key not yet known
        interval, key = sender.disclose(now=3.5 * INTERVAL)
        assert receiver.accept_key(interval, key)
        released = receiver.release_verified()
        assert released == [(b"alert", tag)]
        assert receiver.pending == 0

    def test_security_condition_rejects_late_packets(self):
        _, sender, receiver = make_pair(lag=2)
        tag = sender.authenticate(b"alert", now=1.5 * INTERVAL)
        # Arrives after interval 1's key could be public (interval >= 3).
        assert not receiver.buffer(b"alert", tag, arrival_time=3.1 * INTERVAL)
        assert receiver.rejected_unsafe == 1

    def test_forged_mac_rejected_after_disclosure(self):
        _, sender, receiver = make_pair()
        tag = sender.authenticate(b"alert", now=1.5 * INTERVAL)
        forged = MuTeslaTag(sender_id=1, interval=tag.interval, mac=b"12345678")
        receiver.buffer(b"forged", forged, arrival_time=1.6 * INTERVAL)
        interval, key = sender.disclose(now=3.5 * INTERVAL)
        receiver.accept_key(interval, key)
        assert receiver.release_verified() == []
        assert receiver.rejected_bad_mac == 1

    def test_bogus_disclosed_key_rejected(self):
        _, sender, receiver = make_pair()
        assert not receiver.accept_key(1, b"x" * 16)

    def test_key_reacceptance_consistent(self):
        _, sender, receiver = make_pair()
        interval, key = sender.disclose(now=4.5 * INTERVAL)
        assert receiver.accept_key(interval, key)
        assert receiver.accept_key(interval, key)  # idempotent
        assert not receiver.accept_key(interval, b"y" * 16)

    def test_skipped_disclosures_recovered(self):
        # Receiver misses intermediate keys; a later key authenticates the
        # whole prefix via repeated hashing.
        _, sender, receiver = make_pair(length=20, lag=1)
        tags = [
            sender.authenticate(b"m%d" % i, now=(i + 0.5) * INTERVAL)
            for i in range(1, 6)
        ]
        for i, tag in enumerate(tags, start=1):
            receiver.buffer(b"m%d" % i, tag, arrival_time=(i + 0.6) * INTERVAL)
        interval, key = sender.disclose(now=7 * INTERVAL)  # disclose K_6... -> K_5
        assert interval >= 5
        assert receiver.accept_key(interval, key)
        assert len(receiver.release_verified()) == 5

    def test_multiple_packets_same_interval(self):
        _, sender, receiver = make_pair()
        t1 = sender.authenticate(b"a", now=1.2 * INTERVAL)
        t2 = sender.authenticate(b"b", now=1.8 * INTERVAL)
        receiver.buffer(b"a", t1, arrival_time=1.3 * INTERVAL)
        receiver.buffer(b"b", t2, arrival_time=1.9 * INTERVAL)
        interval, key = sender.disclose(now=3.5 * INTERVAL)
        receiver.accept_key(interval, key)
        assert len(receiver.release_verified()) == 2
