"""Tests for HMAC packet tags."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.mac import TAG_LENGTH, compute_tag, verify_tag
from repro.errors import AuthenticationError


class TestComputeTag:
    def test_deterministic(self):
        assert compute_tag(b"k", b"msg") == compute_tag(b"k", b"msg")

    def test_default_length(self):
        assert len(compute_tag(b"k", b"msg")) == TAG_LENGTH

    def test_custom_length(self):
        assert len(compute_tag(b"k", b"msg", length=16)) == 16

    def test_empty_key_rejected(self):
        with pytest.raises(AuthenticationError):
            compute_tag(b"", b"msg")

    @pytest.mark.parametrize("length", [0, 33, -1])
    def test_bad_length_rejected(self, length):
        with pytest.raises(AuthenticationError):
            compute_tag(b"k", b"msg", length=length)

    def test_key_sensitivity(self):
        assert compute_tag(b"k1", b"msg") != compute_tag(b"k2", b"msg")

    def test_message_sensitivity(self):
        assert compute_tag(b"k", b"a") != compute_tag(b"k", b"b")


class TestVerifyTag:
    def test_roundtrip(self):
        tag = compute_tag(b"key", b"payload")
        assert verify_tag(b"key", b"payload", tag)

    def test_wrong_key_fails(self):
        tag = compute_tag(b"key", b"payload")
        assert not verify_tag(b"other", b"payload", tag)

    def test_tampered_message_fails(self):
        tag = compute_tag(b"key", b"payload")
        assert not verify_tag(b"key", b"payload!", tag)

    def test_none_tag_fails(self):
        assert not verify_tag(b"key", b"payload", None)

    def test_truncated_tag_fails(self):
        tag = compute_tag(b"key", b"payload")
        assert not verify_tag(b"key", b"payload", tag[:-1])

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=256))
    def test_roundtrip_property(self, key, msg):
        assert verify_tag(key, msg, compute_tag(key, msg))
