"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.manager import KeyManager
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


@pytest.fixture
def engine() -> Engine:
    """A fresh event engine."""
    return Engine()


@pytest.fixture
def rngs() -> RngRegistry:
    """A deterministic RNG registry."""
    return RngRegistry(seed=1234)


@pytest.fixture
def trace() -> TraceRecorder:
    """An enabled trace recorder."""
    return TraceRecorder(enabled=True)


@pytest.fixture
def network(engine, rngs, trace) -> Network:
    """A default network (150 ft range, 10 ft ranging error)."""
    return Network(engine, rngs=rngs, trace=trace)


@pytest.fixture
def key_manager() -> KeyManager:
    """A key manager with the full-pairwise oracle scheme."""
    return KeyManager()


@pytest.fixture
def rng() -> random.Random:
    """A plain deterministic random stream."""
    return random.Random(99)
