#!/usr/bin/env python3
"""Battlefield surveillance under attack — the paper's motivating scenario.

Deploys the full Section 4 network (1,000 nodes, 110 beacons, 10 of them
compromised, a wormhole across the field, colluding false-alert reporters)
and runs the complete secure-location-discovery pipeline twice:

1. with a *stealthy* adversary (small P', hoping to dodge detection), and
2. with an *aggressive* adversary (large P', maximizing immediate damage),

then reports the evaluation metrics of both — showing the paper's central
trade-off: the more a compromised beacon lies, the faster it gets revoked.

Run:
    python examples/battlefield_surveillance.py
"""

from repro.core import analysis
from repro.core.analysis import Population
from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline


def run_campaign(label: str, p_prime: float) -> None:
    config = PipelineConfig(p_prime=p_prime, seed=101)
    pipeline = SecureLocalizationPipeline(config)
    result = pipeline.run()

    population = Population(
        n_total=config.n_total,
        n_beacons=config.n_beacons,
        n_malicious=config.n_malicious,
    )
    n_c = int(round(result.mean_requesters_per_malicious))
    predicted = analysis.revocation_detection_rate(
        p_prime, config.m_detecting_ids, config.tau_alert, n_c, population
    )

    print(f"--- {label} (P' = {p_prime}) ---")
    print(f"  malicious beacons revoked : {result.revoked_malicious}/10 "
          f"(simulated {result.detection_rate:.0%}, theory {predicted:.0%})")
    print(f"  benign beacons revoked    : {result.revoked_benign} "
          f"(false positive rate {result.false_positive_rate:.1%})")
    print(f"  misled sensor nodes (N')  : "
          f"{result.affected_non_beacons_per_malicious:.1f} per malicious beacon")
    print(f"  alerts accepted/rejected  : {result.alerts_accepted}/"
          f"{result.alerts_rejected}")
    print(f"  mean localization error   : "
          f"{result.mean_localization_error_ft:.1f} ft over "
          f"{len(result.localization_errors_ft)} solved sensors")
    print()


def render_outcome_map(p_prime: float = 0.2) -> None:
    """Write an SVG map of one run's outcome next to this script."""
    import pathlib

    from repro.experiments.fieldmap import pipeline_field_map, render_field_map

    pipeline = SecureLocalizationPipeline(
        PipelineConfig(p_prime=p_prime, seed=101)
    )
    pipeline.run()
    scene = pipeline_field_map(
        pipeline, title=f"Run outcome at P' = {p_prime}"
    )
    destination = pathlib.Path(__file__).with_name("battlefield_map.svg")
    destination.write_text(render_field_map(scene))
    print(f"field map written to {destination}")


def main() -> None:
    print("Secure location discovery for battlefield surveillance")
    print("=" * 60)
    print("Field: 1000x1000 ft, 1000 nodes, 110 beacons (10 compromised),")
    print("wormhole (100,100)<->(800,700), m=8 detecting IDs, tau'=2, tau=2")
    print()
    run_campaign("stealthy adversary", p_prime=0.05)
    run_campaign("moderate adversary", p_prime=0.2)
    run_campaign("aggressive adversary", p_prime=0.8)
    print("Reading: aggression buys the attacker nothing — high P' gets")
    print("every compromised beacon revoked before it can mislead sensors,")
    print("while stealth keeps P' (and so the damage) small by definition.")
    print()
    render_outcome_map()


if __name__ == "__main__":
    main()
