#!/usr/bin/env python3
"""What location attacks cost geographic routing — and what the defence buys.

The paper's introduction motivates secure localization through GPSR-style
geographic routing. This example runs the localization pipeline twice
(defended / undefended), builds GPSR position tables from the resulting
estimates, and routes the same random workload over each.

Run:
    python examples/geographic_routing.py
"""

import random

from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline
from repro.routing.gpsr import GpsrRouter
from repro.routing.metrics import delivery_ratio, mean_path_stretch
from repro.routing.table import PositionTable


def run_pipeline(defended: bool):
    base = dict(
        n_total=500,
        n_beacons=60,
        n_malicious=6,
        field_width_ft=700.0,
        field_height_ft=700.0,
        p_prime=0.4,
        location_lie_ft=250.0,
        wormhole_endpoints=((80.0, 80.0), (600.0, 500.0)),
        rtt_calibration_samples=500,
        seed=4099,
    )
    if not defended:
        base.update(
            m_detecting_ids=0,
            collusion=False,
            tau_alert=10_000,
            wormhole_p_d=0.0,
        )
    pipeline = SecureLocalizationPipeline(PipelineConfig(**base))
    pipeline.run()
    estimates = {
        agent.node_id: agent.estimated_position
        for agent in pipeline.agents
        if agent.estimated_position is not None
    }
    return pipeline, estimates


def main() -> None:
    print("Building the defended and undefended networks (same field)...")
    defended_pipeline, defended_est = run_pipeline(defended=True)
    undefended_pipeline, undefended_est = run_pipeline(defended=False)

    rng = random.Random(5)
    ids = [n.node_id for n in defended_pipeline.network.nodes()]
    workload = [(rng.choice(ids), rng.choice(ids)) for _ in range(200)]

    scenarios = {
        "ground-truth positions": (
            defended_pipeline.network,
            PositionTable.ground_truth(defended_pipeline.network),
        ),
        "defended estimates": (
            defended_pipeline.network,
            PositionTable.from_estimates(
                defended_pipeline.network, defended_est
            ),
        ),
        "undefended estimates": (
            undefended_pipeline.network,
            PositionTable.from_estimates(
                undefended_pipeline.network, undefended_est
            ),
        ),
    }

    print()
    print(f"{'scenario':<26} {'delivery':>9} {'stretch':>8}")
    for label, (network, table) in scenarios.items():
        router = GpsrRouter(network, table)
        ratio = delivery_ratio(router, workload)
        stretch = mean_path_stretch(router, workload)
        print(f"{label:<26} {ratio:>9.1%} {stretch:>8.2f}")

    print()
    print("Reading: GPSR needs positions it can trust. Lying beacons poison")
    print("the tables and packets greedy-forward into the wrong region; the")
    print("detection + revocation suite keeps delivery near the clean level.")


if __name__ == "__main__":
    main()
