#!/usr/bin/env python3
"""Tune the revocation thresholds (tau', tau) — the Section 3.2 method.

Given deployment expectations (network size, expected wormholes, wormhole
detector quality) and security requirements (bound on misled sensors N',
bound on falsely revoked beacons N_f), this example walks the paper's
threshold-selection procedure:

1. For each candidate tau, compute the attacker's best case N' (Figure 9's
   constraint) and keep taus meeting the N' bound.
2. For each surviving tau, find the smallest tau' whose report-counter
   overflow probability P_o is negligible (Figure 10's constraint).
3. Among the (tau', tau) candidates, report worst-case false positives N_f
   and pick the pair minimizing it.

Run:
    python examples/threshold_tuning.py
"""

from repro.core import analysis
from repro.core.analysis import Population

# Deployment expectations.
POPULATION = Population(n_total=10_000, n_beacons=1_010, n_malicious=10)
N_WORMHOLES = 10
P_D = 0.9
M_DETECTING_IDS = 8
N_C = 100  # expected requesters per beacon
P_PRIME_EXPECTED = 0.1

# Security requirements.
MAX_AFFECTED = 10.0  # misled sensors per malicious beacon, worst case
MAX_OVERFLOW = 0.01  # acceptable P_o
MAX_FALSE_POSITIVES = 15.0  # benign beacons revoked, worst case


def main() -> None:
    print("Step 1: bound the attacker's best case N' (Figure 9 constraint)")
    print(f"{'tau':>5} {'worst-case N_prime':>20} {'acceptable':>12}")
    surviving = []
    for tau_alert in range(1, 7):
        worst = max(
            analysis.worst_case_affected(
                M_DETECTING_IDS, tau_alert, n_c, POPULATION, grid=200
            )[1]
            for n_c in range(10, 260, 10)
        )
        ok = worst <= MAX_AFFECTED
        if ok:
            surviving.append(tau_alert)
        print(f"{tau_alert:>5} {worst:>20.2f} {'yes' if ok else 'no':>12}")

    print()
    print("Step 2: pick tau' so benign report counters rarely overflow "
          "(Figure 10 constraint)")
    candidates = []
    print(f"{'tau':>5} {'tau_report':>11} {'P_o':>12}")
    for tau_alert in surviving:
        for tau_report in range(0, 11):
            p_o = analysis.report_counter_overflow(
                tau_report,
                n_c=N_C,
                m=M_DETECTING_IDS,
                p_prime=P_PRIME_EXPECTED,
                tau_alert=tau_alert,
                n_wormholes=N_WORMHOLES,
                p_d=P_D,
                population=POPULATION,
            )
            if p_o <= MAX_OVERFLOW:
                candidates.append((tau_report, tau_alert))
                print(f"{tau_alert:>5} {tau_report:>11} {p_o:>12.2e}")
                break

    print()
    print("Step 3: among candidates, minimize worst-case false positives N_f")
    print(f"{'tau_report':>11} {'tau':>5} {'N_f':>10} {'acceptable':>12}")
    best = None
    for tau_report, tau_alert in candidates:
        n_f = analysis.false_positives_nf(
            N_WORMHOLES, P_D, tau_report, tau_alert, POPULATION
        )
        ok = n_f <= MAX_FALSE_POSITIVES
        print(f"{tau_report:>11} {tau_alert:>5} {n_f:>10.2f} "
              f"{'yes' if ok else 'no':>12}")
        if ok and (best is None or n_f < best[2]):
            best = (tau_report, tau_alert, n_f)

    print()
    if best is None:
        print("No threshold pair meets all requirements; relax a bound.")
    else:
        tau_report, tau_alert, n_f = best
        detection = analysis.revocation_detection_rate(
            P_PRIME_EXPECTED, M_DETECTING_IDS, tau_alert, N_C, POPULATION
        )
        print(f"Chosen thresholds: tau' = {tau_report}, tau = {tau_alert}")
        print(f"  worst-case false positives N_f : {n_f:.1f} benign beacons")
        print(f"  detection rate at P' = {P_PRIME_EXPECTED}     : "
              f"{detection:.0%}")


if __name__ == "__main__":
    main()
