#!/usr/bin/env python3
"""Quickstart: detect and revoke a lying beacon node in 60 lines.

Builds a small field with three honest beacon nodes, one compromised
beacon that lies about its location, and one sensor node trying to find
itself. Two of the honest beacons run the paper's detection suite, catch
the liar, and the base station revokes it — after which the sensor's
position estimate recovers.

Run:
    python examples/quickstart.py
"""

from repro.attacks.compromised import MaliciousBeacon
from repro.attacks.strategy import AdversaryStrategy
from repro.core.detecting import DetectingBeacon
from repro.core.pipeline import SecureNonBeaconAgent
from repro.core.replay_filter import ReplayFilterCascade
from repro.core.revocation import BaseStation, RevocationConfig
from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.core.signal_detector import MaliciousSignalDetector
from repro.crypto.manager import KeyManager
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.utils.geometry import Point
from repro.wormhole.detector import ProbabilisticWormholeDetector


def main() -> None:
    engine = Engine()
    rngs = RngRegistry(seed=7)
    network = Network(engine, rngs=rngs)
    keys = KeyManager()
    base_station = BaseStation(keys, RevocationConfig(tau_report=2, tau_alert=1))

    # One shared RTT calibration (the paper's Figure 4 procedure).
    calibration = calibrate_rtt(network.rtt_model, rngs.stream("cal"), samples=2000)

    def cascade(name: str) -> ReplayFilterCascade:
        return ReplayFilterCascade(
            wormhole_detector=ProbabilisticWormholeDetector(
                0.9, rngs.stream(f"wd-{name}")
            ),
            local_replay_detector=LocalReplayDetector(calibration),
            comm_range_ft=network.radio.comm_range_ft,
        )

    # Three honest beacons; two of them actively probe their neighbours.
    for node_id, position in [(1, Point(0, 0)), (2, Point(120, 0)), (3, Point(0, 120))]:
        keys.enroll(node_id, is_beacon=True)
        beacon = DetectingBeacon(
            node_id,
            position,
            keys,
            signal_detector=MaliciousSignalDetector(max_error_ft=10.0),
            filter_cascade=cascade(str(node_id)),
            base_station=base_station,
            detecting_ids=keys.allocate_detecting_ids(node_id, 4),
        )
        network.add_node(beacon)
        for did in beacon.detecting_ids:
            network.add_alias(did, node_id)

    # The compromised beacon: always lies 150 ft about its location.
    keys.enroll(4, is_beacon=True)
    liar = MaliciousBeacon(
        4, Point(60, 60), keys, AdversaryStrategy(p_n=0.0, location_lie_ft=150.0)
    )
    network.add_node(liar)

    # A sensor node that wants to locate itself.
    keys.enroll(50)
    sensor = SecureNonBeaconAgent(50, Point(40, 50), keys, cascade("sensor"))
    network.add_node(sensor)

    # --- Stage 1: sensors gather beacon signals (liar included). --------
    for beacon_id in (1, 2, 3, 4):
        sensor.request_beacon(beacon_id)
    engine.run()
    naive = sensor.estimate_position()
    print(f"with the liar     : estimate={naive.position}, "
          f"error={sensor.location_error_ft():.1f} ft")

    # --- Stage 2: detecting beacons probe the liar and report. ----------
    for detector_id in (1, 2):
        network.node(detector_id).probe_all_ids(4)
    engine.run()
    print(f"revoked beacons   : {sorted(base_station.revoked)}")

    # --- Stage 3: re-estimate without the revoked beacon. ---------------
    sensor.revoked_beacons |= base_station.revoked
    sensor.references = [
        r for r in sensor.references if r.beacon_id not in base_station.revoked
    ]
    clean = sensor.estimate_position()
    print(f"after revocation  : estimate={clean.position}, "
          f"error={sensor.location_error_ft():.1f} ft")


if __name__ == "__main__":
    main()
