#!/usr/bin/env python3
"""Reproduce the Figure 4 workflow: calibrate RTT, then catch replays.

1. Samples 10,000 attack-free register-level round-trip times (the paper
   measured these on MICA motes; we use the synthetic hardware model).
2. Prints the empirical CDF as an ASCII plot with the x_min/x_max window.
3. Shows the detector's blind spot: replays delayed by less than the
   window width (~4.5 bit-times) sometimes slip through, while a real
   replay (>= one full packet transmission time) is always caught.

Run:
    python examples/rtt_calibration.py
"""

import random

from repro.core.rtt import LocalReplayDetector, calibrate_rtt
from repro.sim.timing import BIT_TIME_CYCLES, RttModel, packet_transmission_cycles
from repro.utils.stats import Ecdf


def ascii_cdf(ecdf: Ecdf, *, rows: int = 12, width: int = 56) -> str:
    lines = []
    lo, hi = ecdf.x_min, ecdf.x_max
    for row in range(rows, -1, -1):
        level = row / rows
        cells = []
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            cells.append("#" if ecdf(x) >= level else " ")
        lines.append(f"{level:4.2f} |{''.join(cells)}")
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.0f}{'cycles':^{width - 24}}{hi:>12.0f}")
    return "\n".join(lines)


def main() -> None:
    model = RttModel()
    rng = random.Random(0)

    print("Calibrating: 10,000 attack-free RTT measurements...")
    rtts = model.sample_rtts(rng, 10_000)
    ecdf = Ecdf(rtts)
    calibration = calibrate_rtt(model, random.Random(1), samples=10_000)
    detector = LocalReplayDetector(calibration)

    print()
    print(ascii_cdf(ecdf))
    print()
    print(f"x_min = {calibration.x_min:.0f} cycles")
    print(f"x_max = {calibration.x_max:.0f} cycles")
    print(f"window = {calibration.window_cycles:.0f} cycles "
          f"= {calibration.window_bits:.2f} bit transmission times "
          f"(paper reports ~4.5)")
    print()

    # Detection sweep: delay in bit-times vs detection probability.
    print(f"{'replay delay':>16} {'detected':>10}")
    trials = 2_000
    for delay_bits in (0.5, 1.0, 2.0, 4.0, 4.5, 8.0):
        delay = delay_bits * BIT_TIME_CYCLES
        caught = sum(
            1
            for _ in range(trials)
            if detector.is_replayed(
                model.sample(rng, extra_delay_cycles=delay).rtt
            )
        )
        print(f"{delay_bits:>12.1f} bits {caught / trials:>9.1%}")

    packet_delay = packet_transmission_cycles(288)
    caught = sum(
        1
        for _ in range(trials)
        if detector.is_replayed(
            model.sample(rng, extra_delay_cycles=packet_delay).rtt
        )
    )
    print(f"{'1 full packet':>16} {caught / trials:>9.1%}   "
          f"({packet_delay / BIT_TIME_CYCLES:.0f} bit-times — the minimum a "
          f"real local replay costs)")


if __name__ == "__main__":
    main()
