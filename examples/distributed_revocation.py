#!/usr/bin/env python3
"""Distributed revocation without a base station (the paper's future work).

Runs the standard deployment's detection phase, then feeds the same alert
stream to the gossip-based distributed protocol (µTESLA-authenticated
alerts flooded over the beacon graph, per-beacon ledgers with the same
tau'/tau counters) and compares the two verdicts.

Run:
    python examples/distributed_revocation.py
"""

from repro.core.distributed import (
    DistributedConfig,
    DistributedRevocationProtocol,
)
from repro.core.pipeline import PipelineConfig, SecureLocalizationPipeline


def main() -> None:
    print("Phase 1: centralized run (detection probes + base station)")
    pipeline = SecureLocalizationPipeline(
        PipelineConfig(p_prime=0.3, seed=2027)
    )
    central = pipeline.run()
    malicious = {b.node_id for b in pipeline.malicious_beacons}
    benign = {b.node_id for b in pipeline.benign_beacons}
    print(f"  base station revoked {central.revoked_malicious}/10 malicious, "
          f"{central.revoked_benign} benign")

    print()
    print("Phase 2: replay the alert stream through gossip + local ledgers")
    proto = DistributedRevocationProtocol(
        pipeline.network,
        DistributedConfig(tau_report=2, tau_alert=2),
    )
    published = 0
    for record in pipeline.base_station.log:
        if record.reason in ("accepted", "quota-exceeded"):
            proto.publish_alert(record.detector_id, record.target_id)
            published += 1
    proto.run_intervals(4)
    print(f"  {published} alerts flooded over "
          f"{len(proto.beacon_ids)} beacon ledgers "
          f"({proto.alerts_delivered} gossip deliveries)")

    quorum = len(proto.beacon_ids) // 2
    print()
    print("Verdict comparison")
    print(f"  {'metric':<28} {'centralized':>12} {'distributed':>12}")
    print(f"  {'detection rate':<28} {central.detection_rate:>12.0%} "
          f"{proto.detection_rate(malicious, quorum=quorum):>12.0%}")
    print(f"  {'false positive rate':<28} "
          f"{central.false_positive_rate:>12.1%} "
          f"{proto.false_positive_rate(benign, quorum=quorum):>12.1%}")
    print(f"  {'agreement (pairwise Jaccard)':<28} {'1.00':>12} "
          f"{proto.agreement():>12.2f}")
    print()
    print("Reading: the ledgers reproduce the base station's verdict at a")
    print("majority quorum; the price of decentralization is imperfect")
    print("agreement between beacons the gossip horizon treats differently.")


if __name__ == "__main__":
    main()
