#!/usr/bin/env python3
"""Monte-Carlo validation: does the simulation match the paper's theory?

Runs the Figure 12 comparison properly — many independent trials per
operating point — and reports the simulated detection rate with a 95%
confidence interval next to the closed-form prediction, plus a z-score
verdict per point (the quantitative version of the paper's "the result
conforms to the theoretical analysis").

Run:
    python examples/confidence_report.py              # ~1 minute, serial
    python examples/confidence_report.py --workers 4  # sharded trials
"""

import argparse

from repro.core import analysis
from repro.core.analysis import Population
from repro.experiments.montecarlo import run_trials
from repro.experiments.runner import ExperimentRunner, PipelineExperiment
from repro.experiments.validation import proportion_z_score

P_GRID = (0.05, 0.1, 0.2, 0.4)
TRIALS = 8
N_MALICIOUS = 10


def experiment_factory(p_prime):
    # PipelineExperiment carries the overrides as picklable data, so the
    # same experiment shards across worker processes unchanged.
    return PipelineExperiment(overrides={"p_prime": p_prime})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the trials (results are identical)",
    )
    args = parser.parse_args()
    runner = ExperimentRunner(n_workers=max(1, args.workers))

    pop = Population(n_total=1_000, n_beacons=110, n_malicious=N_MALICIOUS)
    print(f"{TRIALS} trials per point, {N_MALICIOUS} malicious beacons each")
    print()
    print(f"{'P_prime':>8} {'simulated (95% CI)':>26} {'theory':>8} "
          f"{'z':>6} {'verdict':>9}")
    for p in P_GRID:
        summaries = run_trials(
            experiment_factory(p), trials=TRIALS, base_seed=int(p * 1000),
            runner=runner,
        )
        det = summaries["detection_rate"]
        n_c = int(round(summaries["mean_requesters_per_malicious"].mean))
        theory = analysis.revocation_detection_rate(p, 8, 2, n_c, pop)
        # Each trial observes N_MALICIOUS Bernoulli revocations.
        observations = TRIALS * N_MALICIOUS
        successes = round(det.mean * observations)
        z = proportion_z_score(successes, observations, theory)
        verdict = "ok" if abs(z) <= 3.0 else "MISMATCH"
        print(f"{p:>8.2f} {str(det):>26} {theory:>8.2f} {z:>6.1f} "
              f"{verdict:>9}")
    print()
    print("Interpretation: |z| <= 3 at every point means the simulated")
    print("revocation pipeline is statistically consistent with the")
    print("paper's closed-form P_d — Figure 12's claim, with error bars.")


if __name__ == "__main__":
    main()
