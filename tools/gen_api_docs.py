#!/usr/bin/env python3
"""Generate docs/API.md from module/class/function docstrings.

Dependency-free (stdlib ``ast`` only — the modules are parsed, never
imported), so it runs anywhere CI does. Covers the public surface of the
fault-injection and experiment-execution layers:

- ``repro.detectors`` (base, paper, consistency, mahalanobis, noisy)
- ``repro.faults`` (config, models, injector)
- ``repro.obs`` (config, metrics, spans, export)
- ``repro.experiments.runner`` and ``repro.experiments.arena``
- ``repro.sim.reliable``
- ``repro.verify`` (oracles, differential, invariants, detectors,
  statgate, cli)
- ``repro.vec`` (arrays, geometry, measurement, detection,
  localization, replay, turbo)

For every module it emits the docstring summary (plus its ``Paper
section:`` line when the module carries one); for every public class,
the class summary and each public method's signature and first docstring
line; for every public module-level function, its signature and summary.
Missing docstrings are emitted as ``*(undocumented)*`` so gaps are
visible in review — and the docstring-policy test fails on them anyway.

Usage::

    python tools/gen_api_docs.py            # (re)write docs/API.md
    python tools/gen_api_docs.py --check    # exit 1 if docs/API.md is stale
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
OUTPUT = REPO_ROOT / "docs" / "API.md"

#: (dotted module name, source path) pairs, in emission order.
MODULES = [
    ("repro.detectors.base", SRC / "repro" / "detectors" / "base.py"),
    ("repro.detectors.paper", SRC / "repro" / "detectors" / "paper.py"),
    (
        "repro.detectors.consistency",
        SRC / "repro" / "detectors" / "consistency.py",
    ),
    (
        "repro.detectors.mahalanobis",
        SRC / "repro" / "detectors" / "mahalanobis.py",
    ),
    ("repro.detectors.noisy", SRC / "repro" / "detectors" / "noisy.py"),
    ("repro.faults.config", SRC / "repro" / "faults" / "config.py"),
    ("repro.faults.models", SRC / "repro" / "faults" / "models.py"),
    ("repro.faults.injector", SRC / "repro" / "faults" / "injector.py"),
    ("repro.obs.config", SRC / "repro" / "obs" / "config.py"),
    ("repro.obs.metrics", SRC / "repro" / "obs" / "metrics.py"),
    ("repro.obs.spans", SRC / "repro" / "obs" / "spans.py"),
    ("repro.obs.export", SRC / "repro" / "obs" / "export.py"),
    ("repro.obs.live", SRC / "repro" / "obs" / "live.py"),
    ("repro.experiments.runner", SRC / "repro" / "experiments" / "runner.py"),
    ("repro.experiments.arena", SRC / "repro" / "experiments" / "arena.py"),
    (
        "repro.experiments.distributed",
        SRC / "repro" / "experiments" / "distributed.py",
    ),
    ("repro.sim.reliable", SRC / "repro" / "sim" / "reliable.py"),
    (
        "repro.revocation.service",
        SRC / "repro" / "revocation" / "service.py",
    ),
    (
        "repro.revocation.persistence",
        SRC / "repro" / "revocation" / "persistence.py",
    ),
    ("repro.revocation.replay", SRC / "repro" / "revocation" / "replay.py"),
    ("repro.verify.oracles", SRC / "repro" / "verify" / "oracles.py"),
    ("repro.verify.differential", SRC / "repro" / "verify" / "differential.py"),
    ("repro.verify.invariants", SRC / "repro" / "verify" / "invariants.py"),
    ("repro.verify.detectors", SRC / "repro" / "verify" / "detectors.py"),
    ("repro.verify.statgate", SRC / "repro" / "verify" / "statgate.py"),
    ("repro.verify.cli", SRC / "repro" / "verify" / "cli.py"),
    ("repro.vec.arrays", SRC / "repro" / "vec" / "arrays.py"),
    ("repro.vec.geometry", SRC / "repro" / "vec" / "geometry.py"),
    ("repro.vec.measurement", SRC / "repro" / "vec" / "measurement.py"),
    ("repro.vec.detection", SRC / "repro" / "vec" / "detection.py"),
    ("repro.vec.localization", SRC / "repro" / "vec" / "localization.py"),
    ("repro.vec.replay", SRC / "repro" / "vec" / "replay.py"),
    ("repro.vec.turbo", SRC / "repro" / "vec" / "turbo.py"),
]

HEADER = """\
# API reference

Public classes and functions of the pluggable detector suite
(`repro.detectors`), the fault-injection layer
(`repro.faults`), the observability layer (`repro.obs`), the experiment
runner (`repro.experiments.runner`), the detector arena
(`repro.experiments.arena`), the distributed file-queue
backend (`repro.experiments.distributed`), the ARQ reliable-delivery
channel (`repro.sim.reliable`), the sharded persistent revocation
service (`repro.revocation`), the paper-fidelity conformance harness
(`repro.verify`), and the vectorized batch simulation core
(`repro.vec`).

**Generated file — do not edit by hand.** Regenerate with::

    python tools/gen_api_docs.py

CI runs ``python tools/gen_api_docs.py --check`` and fails when this
file is stale. Background reading: [`ARENA.md`](ARENA.md),
[`FAULTS.md`](FAULTS.md),
[`OBSERVABILITY.md`](OBSERVABILITY.md), [`REVOCATION.md`](REVOCATION.md),
[`VERIFY.md`](VERIFY.md), [`PERFORMANCE.md`](PERFORMANCE.md).
"""


def _summary(docstring):
    """First paragraph of a docstring, joined to one line."""
    if not docstring:
        return "*(undocumented)*"
    lines = []
    for line in docstring.strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def _first_line(docstring):
    """First non-empty docstring line (method summaries)."""
    if not docstring:
        return "*(undocumented)*"
    for line in docstring.strip().splitlines():
        if line.strip():
            return line.strip()
    return "*(undocumented)*"


def _paper_section(docstring):
    """The ``Paper section:`` line of a docstring, if present."""
    if not docstring:
        return None
    for line in docstring.splitlines():
        if line.strip().startswith("Paper section:"):
            return line.strip()
    return None


def _signature(node):
    """A compact ``name(arg, arg=default, ...)`` rendering of a def."""
    args = node.args
    parts = []
    positional = args.posonlyargs + args.args
    defaults = [None] * (len(positional) - len(args.defaults)) + list(
        args.defaults
    )
    for arg, default in zip(positional, defaults):
        if arg.arg in ("self", "cls"):
            continue
        parts.append(
            arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}"
        )
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(
            arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}"
        )
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    return f"{node.name}({', '.join(parts)})"


def _is_public_def(node):
    return isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and not node.name.startswith("_")


def _render_class(node):
    """Markdown block for one public class."""
    lines = [f"### `{node.name}`", "", _summary(ast.get_docstring(node)), ""]
    methods = [child for child in node.body if _is_public_def(child)]
    properties = [
        m
        for m in methods
        if any(
            isinstance(d, ast.Name) and d.id == "property"
            for d in m.decorator_list
        )
    ]
    plain = [m for m in methods if m not in properties]
    for method in plain:
        lines.append(
            f"- `{_signature(method)}` — "
            f"{_first_line(ast.get_docstring(method))}"
        )
    for prop in properties:
        lines.append(
            f"- `{prop.name}` *(property)* — "
            f"{_first_line(ast.get_docstring(prop))}"
        )
    if plain or properties:
        lines.append("")
    return lines


def render_module(dotted, path):
    """Markdown section for one module."""
    tree = ast.parse(path.read_text(), filename=str(path))
    doc = ast.get_docstring(tree)
    lines = [f"## `{dotted}`", "", _summary(doc), ""]
    paper = _paper_section(doc)
    if paper:
        lines += [f"*{paper}*", ""]
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            lines += _render_class(node)
    functions = [node for node in tree.body if _is_public_def(node)]
    if functions:
        lines.append("### Functions")
        lines.append("")
        for node in functions:
            lines.append(
                f"- `{_signature(node)}` — "
                f"{_first_line(ast.get_docstring(node))}"
            )
        lines.append("")
    return lines


def generate():
    """The full docs/API.md content."""
    lines = [HEADER]
    for dotted, path in MODULES:
        lines += render_module(dotted, path)
    text = "\n".join(lines)
    while "\n\n\n" in text:
        text = text.replace("\n\n\n", "\n\n")
    return text.rstrip() + "\n"


def main(argv=None):
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/API.md is up to date instead of writing it",
    )
    args = parser.parse_args(argv)
    content = generate()
    if args.check:
        current = OUTPUT.read_text() if OUTPUT.is_file() else ""
        if current != content:
            print(
                f"{OUTPUT.relative_to(REPO_ROOT)} is stale; "
                "run: python tools/gen_api_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT.relative_to(REPO_ROOT)} is up to date")
        return 0
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
