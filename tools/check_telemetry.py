#!/usr/bin/env python3
"""Validate exported telemetry: Chrome trace, JSONL event log, Prometheus dump.

Stdlib-only, so CI (and anyone without the package installed) can sanity-
check the artifacts a ``--trace-out``/``--metrics-out`` run produced:

- **Chrome trace** (``--chrome``): a JSON object with a ``traceEvents``
  list; every ``"X"`` event has non-negative ``ts``/``dur`` and numeric
  ``pid``/``tid``; within each ``(pid, tid)`` lane, spans nest properly
  (a span begun inside another ends inside it). Metadata (``M``) and
  flow (``s``/``t``/``f``) events — as ``tools/stitch_trace.py`` emits —
  are accepted and checked for numeric timestamps.
- **JSONL event log** (``--jsonl``): every line is a JSON object with
  ``trial``/``time``/``kind``; per trial, ``span.begin``/``span.end``
  markers balance like parentheses with matching ids and depths, and
  span-marker sim-times never decrease.
- **Prometheus text** (``--prom``): comment/TYPE lines are well-formed;
  every sample line parses as ``name{labels} value``; counter and
  histogram samples are >= 0; per histogram series, ``_bucket``
  cumulative counts are monotone in ``le`` and the ``+Inf`` bucket
  equals ``_count``.
- **Live scrape** (``--scrape [URL]``): with a URL, scrape a running
  ``repro.obs.TelemetryServer``'s ``/metrics``, ``/healthz``, and
  ``/spans`` endpoints and validate each payload. Without a URL,
  self-test end to end: import ``repro.obs`` (needs ``PYTHONPATH=src``),
  start a server on an ephemeral port with a representative registry,
  scrape it over real HTTP, and validate — including the 404 path.

Exit code 0 when every provided artifact validates; 1 with a message per
defect otherwise.

Usage::

    python tools/check_telemetry.py --chrome out/trace.json \
        --jsonl out/trace.jsonl --prom out/metrics.prom
    PYTHONPATH=src python tools/check_telemetry.py --scrape
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, List, Tuple

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
LE_RE = re.compile(r'le="([^"]+)"')


def check_chrome(path: pathlib.Path, problems: List[str]) -> None:
    """Validate a Chrome/Perfetto trace JSON file."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        problems.append(f"{path}: unreadable or invalid JSON: {exc}")
        return
    events = data.get("traceEvents") if isinstance(data, dict) else None
    if not isinstance(events, list):
        problems.append(f"{path}: no traceEvents list")
        return
    spans: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{path}: traceEvents[{i}] is not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase in ("s", "t", "f"):
            # Flow events (cross-process edges from stitched traces):
            # just need a timestamp and a lane to bind to.
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(
                    f"{path}: traceEvents[{i}] flow event bad ts {ts!r}"
                )
            continue
        if phase != "X":
            problems.append(f"{path}: traceEvents[{i}] has unknown ph {phase!r}")
            continue
        ts, dur = event.get("ts"), event.get("dur")
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{path}: traceEvents[{i}] bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{path}: traceEvents[{i}] bad dur {dur!r}")
            continue
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"{path}: traceEvents[{i}] bad pid/tid")
            continue
        spans.setdefault((pid, tid), []).append((float(ts), float(ts + dur)))
    for lane, intervals in spans.items():
        # Proper nesting: sorted by start, every pair either nests or is
        # disjoint (tiny float slop for microsecond rounding).
        intervals.sort()
        stack: List[Tuple[float, float]] = []
        for start, end in intervals:
            while stack and start >= stack[-1][1] - 1e-6:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-6:
                problems.append(
                    f"{path}: lane {lane}: span [{start}, {end}] overlaps "
                    f"but does not nest inside [{stack[-1][0]}, {stack[-1][1]}]"
                )
            stack.append((start, end))


def check_jsonl(path: pathlib.Path, problems: List[str]) -> None:
    """Validate a JSONL event log (span balance + monotone sim time)."""
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        problems.append(f"{path}: unreadable: {exc}")
        return
    if not lines:
        problems.append(f"{path}: empty event log")
        return
    stacks: Dict[str, List[Tuple[int, int]]] = {}
    last_time: Dict[str, float] = {}
    for lineno, line in enumerate(lines, 1):
        try:
            event = json.loads(line)
        except ValueError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{path}:{lineno}: not a JSON object")
            continue
        for field in ("trial", "time", "kind"):
            if field not in event:
                problems.append(f"{path}:{lineno}: missing {field!r}")
        kind = event.get("kind")
        trial = str(event.get("trial"))
        time = event.get("time")
        if not isinstance(time, (int, float)):
            problems.append(f"{path}:{lineno}: non-numeric time {time!r}")
            continue
        if kind in ("span.begin", "span.end"):
            if time < last_time.get(trial, float("-inf")):
                problems.append(
                    f"{path}:{lineno}: span-marker time {time} decreases "
                    f"(prev {last_time[trial]}) in trial {trial}"
                )
            last_time[trial] = float(time)
            stack = stacks.setdefault(trial, [])
            span_id, depth = event.get("id"), event.get("depth")
            if kind == "span.begin":
                if depth != len(stack):
                    problems.append(
                        f"{path}:{lineno}: span.begin depth {depth} != "
                        f"open spans {len(stack)} in trial {trial}"
                    )
                stack.append((span_id, depth))
            else:
                if not stack:
                    problems.append(
                        f"{path}:{lineno}: span.end with no open span "
                        f"in trial {trial}"
                    )
                    continue
                open_id, open_depth = stack.pop()
                if span_id != open_id:
                    problems.append(
                        f"{path}:{lineno}: span.end id {span_id} != open "
                        f"id {open_id} in trial {trial}"
                    )
    for trial, stack in stacks.items():
        if stack:
            problems.append(
                f"{path}: trial {trial}: {len(stack)} span(s) never ended"
            )


def check_prom(path: pathlib.Path, problems: List[str]) -> None:
    """Validate a Prometheus text-format metrics dump file."""
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        problems.append(f"{path}: unreadable: {exc}")
        return
    check_prom_lines(lines, str(path), problems)


def check_prom_lines(
    lines: List[str], source: str, problems: List[str]
) -> None:
    """Validate Prometheus text-format lines from any source."""
    path = source
    types: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    saw_sample = False
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    problems.append(
                        f"{path}:{lineno}: unknown metric type {parts[3]!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"{path}:{lineno}: unparsable sample: {line!r}")
            continue
        saw_sample = True
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"{path}:{lineno}: non-numeric value {match.group('value')!r}"
            )
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        metric_type = types.get(base)
        if metric_type is None:
            problems.append(f"{path}:{lineno}: sample {name!r} has no TYPE line")
            continue
        if metric_type in ("counter", "histogram") and value < 0:
            problems.append(f"{path}:{lineno}: negative {metric_type} {line!r}")
        if metric_type == "histogram" and name.endswith("_bucket"):
            labels = match.group("labels") or ""
            le_match = LE_RE.search(labels)
            if le_match is None:
                problems.append(f"{path}:{lineno}: _bucket without le label")
                continue
            le_text = le_match.group(1)
            bound = float("inf") if le_text == "+Inf" else float(le_text)
            series = LE_RE.sub("", labels).strip(",")
            buckets.setdefault(f"{base}{{{series}}}", []).append((bound, value))
        if metric_type == "histogram" and name.endswith("_count"):
            counts[f"{base}{{{match.group('labels') or ''}}}"] = value
    for series, pairs in buckets.items():
        pairs.sort()
        cumulative = [count for _, count in pairs]
        if any(b > a for a, b in zip(cumulative[1:], cumulative)):
            problems.append(
                f"{path}: histogram {series}: bucket counts not monotone in le"
            )
        if pairs and pairs[-1][0] != float("inf"):
            problems.append(f"{path}: histogram {series}: no +Inf bucket")
        elif pairs and series in counts and pairs[-1][1] != counts[series]:
            problems.append(
                f"{path}: histogram {series}: +Inf bucket {pairs[-1][1]} "
                f"!= _count {counts[series]}"
            )
    if not saw_sample:
        problems.append(f"{path}: no samples found")


def _scrape(base_url: str, endpoint: str, problems: List[str]):
    """GET one endpoint; returns (status, body) or None on failure."""
    import urllib.error
    import urllib.request

    url = base_url.rstrip("/") + endpoint
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", "replace")
    except (OSError, ValueError) as exc:
        problems.append(f"{url}: scrape failed: {exc}")
        return None


def check_scrape(base_url: str, problems: List[str]) -> None:
    """Scrape a live TelemetryServer and validate every endpoint."""
    metrics = _scrape(base_url, "/metrics", problems)
    if metrics is not None:
        status, body = metrics
        if status != 200:
            problems.append(f"{base_url}/metrics: HTTP {status}")
        else:
            check_prom_lines(
                body.splitlines(), f"{base_url}/metrics", problems
            )
    health = _scrape(base_url, "/healthz", problems)
    if health is not None:
        status, body = health
        try:
            payload = json.loads(body)
        except ValueError:
            payload = None
        if not isinstance(payload, dict) or "status" not in payload:
            problems.append(f"{base_url}/healthz: not a status JSON object")
        elif (payload.get("status") == "ok") != (status == 200):
            problems.append(
                f"{base_url}/healthz: HTTP {status} disagrees with "
                f"status {payload.get('status')!r}"
            )
    spans = _scrape(base_url, "/spans", problems)
    if spans is not None:
        status, body = spans
        try:
            payload = json.loads(body)
        except ValueError:
            payload = None
        if status != 200 or not isinstance(payload, list):
            problems.append(f"{base_url}/spans: expected a JSON list (HTTP 200)")
    missing = _scrape(base_url, "/nope", problems)
    if missing is not None and missing[0] != 404:
        problems.append(f"{base_url}/nope: expected 404, got {missing[0]}")


def check_scrape_selftest(problems: List[str]) -> None:
    """Start an ephemeral TelemetryServer and scrape it over real HTTP.

    Needs ``repro`` importable (run with ``PYTHONPATH=src``). The served
    registry exercises all three metric kinds plus a ``_max`` liveness
    gauge, and the span feed returns one completed span.
    """
    try:
        from repro.obs import MetricsRegistry, TelemetryServer, linear_buckets
    except ImportError as exc:
        problems.append(f"--scrape self-test needs repro importable: {exc}")
        return
    registry = MetricsRegistry()
    registry.counter("queue_tasks_total").inc(3)
    registry.gauge("queue_depth").set(2)
    registry.gauge("queue_heartbeat_age_seconds_max").set(0.25)
    registry.histogram(
        "svc_flush_latency_seconds", buckets=linear_buckets(0.01, 0.01, 4)
    ).observe(0.02)
    spans = [{"name": "trial", "id": "w0:1", "parent": 0, "depth": 0}]
    server = TelemetryServer(
        registry.snapshot,
        health_fn=lambda: {"status": "ok", "selftest": True},
        spans_fn=lambda: spans,
        port=0,
    )
    with server:
        check_scrape(server.url, problems)


def main(argv=None) -> int:
    """Entry point; returns 0 when all provided artifacts validate."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chrome", type=pathlib.Path, default=None)
    parser.add_argument("--jsonl", type=pathlib.Path, default=None)
    parser.add_argument("--prom", type=pathlib.Path, default=None)
    parser.add_argument(
        "--scrape",
        nargs="?",
        const="self",
        default=None,
        metavar="URL",
        help=(
            "scrape a live TelemetryServer's endpoints (base URL); "
            "without a URL, self-test an ephemeral in-process server"
        ),
    )
    args = parser.parse_args(argv)
    if (
        args.chrome is None
        and args.jsonl is None
        and args.prom is None
        and args.scrape is None
    ):
        parser.error(
            "nothing to check: pass --chrome, --jsonl, --prom, and/or --scrape"
        )
    problems: List[str] = []
    if args.chrome is not None:
        check_chrome(args.chrome, problems)
    if args.jsonl is not None:
        check_jsonl(args.jsonl, problems)
    if args.prom is not None:
        check_prom(args.prom, problems)
    if args.scrape == "self":
        check_scrape_selftest(problems)
    elif args.scrape is not None:
        check_scrape(args.scrape, problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"telemetry check FAILED ({len(problems)} problem(s))")
        return 1
    print("telemetry check OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
