#!/usr/bin/env python3
"""Dependency-free Markdown link checker for the repo's documentation.

Scans the curated documentation — README.md, EXPERIMENTS.md, DESIGN.md,
CHANGES.md, ROADMAP.md, and everything under ``docs/`` — for inline
links and validates the local ones. (PAPER.md/PAPERS.md/SNIPPETS.md are
OCR'd source-material dumps with unreproducible image references and are
deliberately out of scope.)

Checked:

- relative file links must resolve to an existing file or directory
  (relative to the linking document);
- fragment-only links (``#section``) must match a heading in the same
  document, and ``file.md#section`` must match a heading in the target
  (GitHub anchor rules: lowercase, punctuation stripped, spaces to
  dashes);
- absolute filesystem links (``/...``) are flagged unconditionally —
  they may resolve on the machine that wrote them and nowhere else;
- ``http(s)``/``mailto`` links are skipped — CI must not depend on
  network reachability.

Usage::

    python tools/check_links.py          # exit 1 on any broken link
    python tools/check_links.py -v       # also list every checked link
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Curated repo-root documents (plus everything under docs/).
ROOT_DOCS = ("README.md", "EXPERIMENTS.md", "DESIGN.md", "CHANGES.md",
             "ROADMAP.md")


def _documents():
    docs = [REPO_ROOT / name for name in ROOT_DOCS] + sorted(
        (REPO_ROOT / "docs").rglob("*.md")
    )
    return [d for d in docs if d.is_file()]


#: Inline Markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks are stripped before link extraction.
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading):
    """The GitHub-style anchor slug of a heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    """All heading anchors of a Markdown file (memoized)."""
    if path not in cache:
        text = path.read_text(encoding="utf-8")
        cache[path] = {
            github_anchor(match) for match in _HEADING.findall(text)
        }
    return cache[path]


def check_document(doc, verbose=False):
    """Broken-link messages for one document (empty list = clean)."""
    problems = []
    text = _FENCE.sub("", doc.read_text(encoding="utf-8"))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if verbose:
            print(f"  {doc.relative_to(REPO_ROOT)} -> {target}")
        path_part, _, fragment = target.partition("#")
        if path_part.startswith("/"):
            # Absolute filesystem paths may resolve on the machine that
            # wrote them and nowhere else — always a doc bug.
            problems.append(
                f"{doc.relative_to(REPO_ROOT)}: absolute filesystem link "
                f"{target} (use a repo-relative path)"
            )
            continue
        if not path_part:
            if fragment and github_anchor(fragment) not in anchors_of(doc):
                problems.append(f"{doc.relative_to(REPO_ROOT)}: no heading "
                                f"for anchor #{fragment}")
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(
                f"{doc.relative_to(REPO_ROOT)}: broken link {target}"
            )
            continue
        if fragment and resolved.suffix == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: {target} — no heading "
                    f"for anchor #{fragment}"
                )
    return problems


def main(argv=None):
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list every checked link"
    )
    args = parser.parse_args(argv)
    problems = []
    documents = _documents()
    for doc in documents:
        problems += check_document(doc, verbose=args.verbose)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(documents)} documents: all local links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
