#!/usr/bin/env python3
"""Stitch per-process span event logs into one Perfetto trace.

Stdlib-only. Inputs are the JSONL event logs the live telemetry plane
writes — ``kind: "span"`` lines produced by
``repro.obs.live.span_event_lines`` — one file per process:

- ``<run>/coordinator.events.jsonl`` — the coordinator's ``task:*``
  spans (ids ``coord:<n>``);
- ``<run>/workers/<id>.events.jsonl`` — each queue worker's executed
  trial spans (ids ``<worker>:<n>``);
- a revocation replay's events log (ids ``svc:<n>``), when one joined
  the trace.

The output is Chrome/Perfetto JSON: one ``X`` (complete) event per span
on a per-process track (``pid`` per input process, metadata
``process_name`` events name the tracks), all on a shared absolute
timeline (microseconds since the earliest span). Cross-process causality
is drawn with flow events: every root span carrying a ``remote_parent``
gets an ``s`` (flow start) event on its parent's track and a binding
``f`` (flow finish) event at its own start, so Perfetto renders an arrow
from the coordinator's ``task:*`` span to the worker's ``trial`` span
(and to the service's ``svc:flush`` spans).

A ``remote_parent`` that names a span absent from the loaded logs is an
error (exit 1) unless ``--allow-dangling`` is given — a stitched trace
with silently missing edges would look complete when it is not.

Usage::

    python tools/stitch_trace.py --run-dir out/queue/run-0000 \
        out/revocation.events.jsonl --out out/stitched.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Tuple


def load_span_lines(
    paths: List[pathlib.Path], problems: List[str]
) -> List[Dict[str, Any]]:
    """Parse ``kind == "span"`` records out of the given JSONL files."""
    spans: List[Dict[str, Any]] = []
    for path in paths:
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                problems.append(f"{path}:{lineno}: invalid JSON: {exc}")
                continue
            if not isinstance(record, dict) or record.get("kind") != "span":
                continue
            for field in ("process", "span", "id", "t0_epoch_s", "dur_s"):
                if field not in record:
                    problems.append(f"{path}:{lineno}: missing {field!r}")
                    break
            else:
                spans.append(record)
    return spans


def collect_run_dir(run_dir: pathlib.Path) -> List[pathlib.Path]:
    """The event logs a queue run directory holds (coordinator + workers)."""
    paths = []
    coordinator = run_dir / "coordinator.events.jsonl"
    if coordinator.exists():
        paths.append(coordinator)
    paths.extend(sorted((run_dir / "workers").glob("*.events.jsonl")))
    return paths


def stitch(
    spans: List[Dict[str, Any]],
    problems: List[str],
    *,
    allow_dangling: bool = False,
) -> Dict[str, Any]:
    """Build the Perfetto trace document from parsed span records.

    Returns ``{"traceEvents": [...], "stitchSummary": {...}}``; appends
    a message to ``problems`` per unresolved ``remote_parent`` unless
    ``allow_dangling``.
    """
    if not spans:
        problems.append("no span records found in the given files")
        return {"traceEvents": []}
    processes = sorted({str(s["process"]) for s in spans})
    pid_of = {name: i + 1 for i, name in enumerate(processes)}
    t_min = min(float(s["t0_epoch_s"]) for s in spans)

    # Lanes (tids): every root span and its descendants share one lane;
    # concurrent roots (a coordinator's in-flight task:* spans overlap
    # in wall time) get distinct lanes, reused greedily once free —
    # the same scheme repro.obs.export.chrome_trace uses.
    parent_of = {str(s["id"]): s.get("parent", 0) for s in spans}

    def root_of(span_id: str) -> str:
        seen = set()
        current = span_id
        while True:
            parent = parent_of.get(current, 0)
            if parent in (0, None, "") or current in seen:
                return current
            seen.add(current)
            current = str(parent)

    lane_of: Dict[str, int] = {}
    lane_free_at: Dict[str, List[float]] = {}
    for span in sorted(spans, key=lambda s: float(s["t0_epoch_s"])):
        span_id = str(span["id"])
        root = root_of(span_id)
        if root in lane_of:
            continue
        if root != span_id:
            continue  # root not seen yet (child sorted first); wait for it
        process = str(span["process"])
        start = float(span["t0_epoch_s"])
        end = start + max(0.0, float(span["dur_s"]))
        lanes = lane_free_at.setdefault(process, [])
        for index, free_at in enumerate(lanes):
            if free_at <= start + 1e-9:
                lane_of[root] = index + 1
                lanes[index] = end
                break
        else:
            lanes.append(end)
            lane_of[root] = len(lanes)

    def tid_of(span_id: str) -> int:
        return lane_of.get(root_of(span_id), 1)

    events: List[Dict[str, Any]] = []
    for name in processes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[name],
                "tid": 0,
                "args": {"name": name},
            }
        )

    # Index every span by id for edge resolution. Namespaced ids are
    # globally unique; a duplicate means two logs disagree — report it.
    by_id: Dict[str, Dict[str, Any]] = {}
    placed: Dict[str, Tuple[int, int, float]] = {}
    for span in spans:
        span_id = str(span["id"])
        if span_id in by_id:
            problems.append(f"duplicate span id {span_id!r} across logs")
        by_id[span_id] = span

    for span in spans:
        process = str(span["process"])
        trial = str(span.get("trial", ""))
        ts = (float(span["t0_epoch_s"]) - t_min) * 1e6
        pid, tid = pid_of[process], tid_of(str(span["id"]))
        placed[str(span["id"])] = (pid, tid, ts)
        args = {
            "id": span["id"],
            "parent": span.get("parent", 0),
            "trial": trial,
            **{
                k: v
                for k, v in (span.get("attrs") or {}).items()
                if isinstance(v, (str, int, float, bool))
            },
        }
        events.append(
            {
                "ph": "X",
                "name": str(span["span"]),
                "cat": trial or "span",
                "ts": ts,
                "dur": max(0.0, float(span["dur_s"]) * 1e6),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    edge_count = 0
    for span in spans:
        remote_parent = span.get("remote_parent")
        if not remote_parent:
            continue
        parent = placed.get(str(remote_parent))
        if parent is None:
            if not allow_dangling:
                problems.append(
                    f"span {span['id']!r} names remote parent "
                    f"{remote_parent!r}, which is in none of the given logs"
                )
            continue
        edge_count += 1
        parent_pid, parent_tid, parent_ts = parent
        child_pid, child_tid, child_ts = placed[str(span["id"])]
        flow = {"cat": "trace", "name": "trace", "id": edge_count}
        events.append(
            {
                "ph": "s",
                "ts": parent_ts,
                "pid": parent_pid,
                "tid": parent_tid,
                **flow,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "ts": child_ts,
                "pid": child_pid,
                "tid": child_tid,
                **flow,
            }
        )

    events.sort(key=lambda e: (e.get("ts", -1), e["pid"], e["tid"]))
    trace_ids = sorted(
        {str(s["trace_id"]) for s in spans if s.get("trace_id")}
    )
    return {
        "traceEvents": events,
        "stitchSummary": {
            "processes": processes,
            "spans": len(spans),
            "edges": edge_count,
            "trace_ids": trace_ids,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns 0 when the stitched trace is complete."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "logs",
        nargs="*",
        type=pathlib.Path,
        help="span event logs (JSONL) to merge",
    )
    parser.add_argument(
        "--run-dir",
        type=pathlib.Path,
        default=None,
        help="queue run directory; adds its coordinator and worker logs",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        required=True,
        help="output Perfetto trace JSON path",
    )
    parser.add_argument(
        "--allow-dangling",
        action="store_true",
        help="tolerate remote parents missing from the given logs",
    )
    args = parser.parse_args(argv)
    paths = list(args.logs)
    if args.run_dir is not None:
        paths = collect_run_dir(args.run_dir) + paths
    if not paths:
        parser.error("no event logs: pass files and/or --run-dir")
    problems: List[str] = []
    spans = load_span_lines(paths, problems)
    document = stitch(spans, problems, allow_dangling=args.allow_dangling)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(document, sort_keys=True) + "\n")
    for problem in problems:
        print(problem, file=sys.stderr)
    summary = document.get("stitchSummary", {})
    print(
        f"stitched {summary.get('spans', 0)} span(s) from "
        f"{len(summary.get('processes', []))} process(es), "
        f"{summary.get('edges', 0)} cross-process edge(s) -> {args.out}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
