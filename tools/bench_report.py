#!/usr/bin/env python3
"""Bench-regression tracker: fold BENCH_*.json + history into a trend report.

Stdlib-only. The repo commits one ``BENCH_<name>.json`` per benchmark
suite (pipeline, scaling, faults, revocation, obs) and an append-only
``benchmarks/history.jsonl`` whose lines snapshot the *headline* metrics
of those files over time. This tool:

- **reports** (default): renders a markdown + JSON trend report — for
  every headline metric, the committed current value, the most recent
  history baseline, and the percentage change in the metric's "good"
  direction;
- **checks** (``--check``): exits 1 when any headline metric regressed
  by more than ``--threshold`` (default 15%) against its baseline —
  the CI gate;
- **records** (``--record``): appends the current headline values as a
  new history line (do this when intentionally refreshing the BENCH
  files).

Scaling entries are annotated — never failed *and never passed as
improved* — when the recorded environment's ``cpu_count`` is below the
worker count the entry used: single-core CI cannot meaningfully move an
8-worker speedup in either direction, so those rows carry a
``stale-cpu`` note and are excluded from ``--check``. The same logic
applies to the *baseline*: a history entry recorded on too few CPUs is
treated as no baseline at all, so a later healthy run is never judged
against meaningless numbers.

Usage::

    python tools/bench_report.py --check
    python tools/bench_report.py --out-md out/BENCH_REPORT.md --out-json out/bench_report.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional

#: Headline metrics per committed BENCH file: dotted path into the
#: file's "benchmarks" object, the direction that counts as good, and —
#: for worker-scaling entries — the worker count the entry exercised
#: (compared against the recorded environment's cpu_count).
HEADLINES: Dict[str, List[Dict[str, Any]]] = {
    "BENCH_pipeline": [
        {"path": "full_trial.fast_s", "good": "lower"},
        {"path": "reachability.fast_s", "good": "lower"},
        {"path": "metrics_collection.fast_s", "good": "lower"},
        {"path": "full_trial.speedup", "good": "higher"},
    ],
    "BENCH_obs": [
        {"path": "full_trial_observe_off.seconds", "good": "lower"},
        {"path": "full_trial_observe_on.seconds", "good": "lower"},
    ],
    "BENCH_revocation": [
        {"path": "in_process_base_station.alerts_per_sec", "good": "higher"},
        {"path": "service.memory.alerts_per_sec", "good": "higher"},
        {"path": "service.jsonl.alerts_per_sec", "good": "higher"},
        {"path": "recovery.records_per_sec", "good": "higher"},
    ],
    "BENCH_scaling": [
        {
            "path": f"queue_scaling.workers.{w}.throughput_trials_per_s",
            "good": "higher",
            "workers": w,
        }
        for w in (1, 2, 4, 8)
    ],
    "BENCH_faults": [
        {"path": "detection_vs_loss.0.0.detection_rate", "good": "higher"},
        {
            "path": "detection_vs_rtt_jitter.0.0.detection_rate",
            "good": "higher",
        },
    ],
    # Arena headlines are fully seeded, so only deterministic metrics are
    # tracked (cpu_us_per_decision is wall clock — machine-dependent —
    # and deliberately excluded).
    "BENCH_arena": [
        spec
        for detector in ("paper", "consistency", "mahalanobis", "noisy")
        for spec in (
            {"path": f"arena.{detector}.detection_rate", "good": "higher"},
            {"path": f"arena.{detector}.false_positive_rate", "good": "lower"},
        )
    ],
}


def dig(data: Any, dotted: str) -> Optional[float]:
    """Resolve a dotted path against nested dicts; None when absent.

    Path segments match keys literally first, so float-looking keys like
    ``"0.0"`` survive: the longest literal prefix of remaining segments
    that is a key wins (``detection_vs_loss.0.0.rate`` finds key
    ``"0.0"``).
    """
    segments = dotted.split(".")
    node = data
    i = 0
    while i < len(segments):
        if not isinstance(node, dict):
            return None
        # Longest literal join of remaining segments that is a key.
        for j in range(len(segments), i, -1):
            candidate = ".".join(segments[i:j])
            if candidate in node:
                node = node[candidate]
                i = j
                break
        else:
            return None
    return float(node) if isinstance(node, (int, float)) else None


def load_current(repo_root: pathlib.Path, problems: List[str]) -> Dict[str, Any]:
    """Read every committed BENCH file named in :data:`HEADLINES`."""
    current: Dict[str, Any] = {}
    for bench in HEADLINES:
        path = repo_root / f"{bench}.json"
        try:
            current[bench] = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            problems.append(f"{path}: unreadable or invalid JSON: {exc}")
    return current


def load_history(path: pathlib.Path, problems: List[str]) -> Dict[str, Dict[str, Any]]:
    """The most recent history line per bench (later lines win)."""
    baselines: Dict[str, Dict[str, Any]] = {}
    if not path.exists():
        return baselines
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON: {exc}")
            continue
        if isinstance(entry, dict) and isinstance(entry.get("bench"), str):
            baselines[entry["bench"]] = entry
    return baselines


def build_rows(
    current: Dict[str, Any],
    baselines: Dict[str, Dict[str, Any]],
    threshold: float,
) -> List[Dict[str, Any]]:
    """One report row per headline metric (current, baseline, verdict)."""
    rows: List[Dict[str, Any]] = []
    for bench, specs in sorted(HEADLINES.items()):
        document = current.get(bench)
        if document is None:
            continue
        benchmarks = document.get("benchmarks", {})
        environment = document.get("environment", {})
        cpu_count = environment.get("cpu_count")
        baseline_entry = baselines.get(bench, {})
        baseline_metrics = baseline_entry.get("metrics", {})
        baseline_cpu = baseline_entry.get("environment", {}).get("cpu_count")
        for spec in specs:
            path = spec["path"]
            value = dig(benchmarks, path)
            baseline = baseline_metrics.get(path)
            row: Dict[str, Any] = {
                "bench": bench,
                "metric": path,
                "good": spec["good"],
                "current": value,
                "baseline": baseline,
                "change_pct": None,
                "status": "ok",
                "notes": [],
            }
            workers = spec.get("workers")
            stale_cpu = (
                workers is not None
                and isinstance(cpu_count, int)
                and cpu_count < workers
            )
            # A baseline recorded below the entry's worker count is as
            # meaningless as a stale current value: comparing against it
            # can neither pass nor fail anything, so it is dropped (the
            # row becomes no-baseline) instead of feeding the verdict.
            baseline_stale = (
                workers is not None
                and isinstance(baseline_cpu, int)
                and baseline_cpu < workers
            )
            if stale_cpu:
                row["notes"].append(
                    f"stale-cpu: recorded on cpu_count={cpu_count} < "
                    f"workers={workers}; informational only"
                )
            if baseline_stale and isinstance(baseline, (int, float)):
                row["baseline"] = None
                baseline = None
                row["notes"].append(
                    f"stale-cpu baseline: history entry recorded on "
                    f"cpu_count={baseline_cpu} < workers={workers}; "
                    "treated as no baseline"
                )
            if value is None:
                row["status"] = "missing"
                row["notes"].append("metric absent from committed BENCH file")
            elif isinstance(baseline, (int, float)) and baseline != 0:
                change = (value - baseline) / abs(baseline)
                row["change_pct"] = round(change * 100.0, 2)
                # A stale current value can neither regress nor improve —
                # the comparison is annotated, never trusted, in either
                # direction.
                if stale_cpu:
                    if abs(change) > threshold:
                        row["status"] = "stale"
                else:
                    worse = (
                        change > 0 if spec["good"] == "lower" else change < 0
                    )
                    if worse and abs(change) > threshold:
                        row["status"] = "regression"
                    elif not worse and abs(change) > threshold:
                        row["status"] = "improved"
            else:
                row["status"] = "no-baseline"
            rows.append(row)
    return rows


def render_markdown(rows: List[Dict[str, Any]], threshold: float) -> str:
    """The human-readable trend report."""
    lines = [
        "# Benchmark trend report",
        "",
        f"Regression threshold: {threshold:.0%} against the most recent "
        "`benchmarks/history.jsonl` baseline. Direction-aware: 'lower' "
        "metrics regress upward, 'higher' metrics regress downward.",
        "",
        "| bench | metric | good | baseline | current | change | status |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        change = (
            f"{row['change_pct']:+.1f}%" if row["change_pct"] is not None else "—"
        )
        baseline = row["baseline"]
        current = row["current"]
        lines.append(
            "| {bench} | `{metric}` | {good} | {baseline} | {current} "
            "| {change} | {status} |".format(
                bench=row["bench"],
                metric=row["metric"],
                good=row["good"],
                baseline="—" if baseline is None else f"{baseline:g}",
                current="—" if current is None else f"{current:g}",
                change=change,
                status=row["status"],
            )
        )
    notes = [note for row in rows for note in row["notes"]]
    if notes:
        lines += ["", "## Notes", ""]
        lines += [f"- {note}" for note in notes]
    regressions = [r for r in rows if r["status"] == "regression"]
    lines += [
        "",
        f"**{len(regressions)} regression(s)** across {len(rows)} headline "
        "metric(s).",
    ]
    return "\n".join(lines) + "\n"


def record_history(
    history_path: pathlib.Path,
    current: Dict[str, Any],
    recorded: str,
) -> int:
    """Append one history line per bench with its headline metrics."""
    lines = []
    for bench, specs in sorted(HEADLINES.items()):
        document = current.get(bench)
        if document is None:
            continue
        metrics = {}
        for spec in specs:
            value = dig(document.get("benchmarks", {}), spec["path"])
            if value is not None:
                metrics[spec["path"]] = value
        lines.append(
            json.dumps(
                {
                    "recorded": recorded,
                    "bench": bench,
                    "metrics": metrics,
                    "environment": document.get("environment", {}),
                },
                sort_keys=True,
            )
        )
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; exit 1 on --check regressions (or unreadable input)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = pathlib.Path(__file__).resolve().parents[1]
    parser.add_argument(
        "--repo-root",
        type=pathlib.Path,
        default=default_root,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=None,
        help="history JSONL path (default: <repo-root>/benchmarks/history.jsonl)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="fractional regression tolerance for --check (default 0.15)",
    )
    parser.add_argument("--out-md", type=pathlib.Path, default=None)
    parser.add_argument("--out-json", type=pathlib.Path, default=None)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any headline metric regressed past the threshold",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="append the current headline values to the history file",
    )
    parser.add_argument(
        "--recorded",
        default="unreleased",
        help="timestamp/tag stored with --record entries",
    )
    args = parser.parse_args(argv)
    history_path = args.history or (args.repo_root / "benchmarks" / "history.jsonl")

    problems: List[str] = []
    current = load_current(args.repo_root, problems)
    baselines = load_history(history_path, problems)
    rows = build_rows(current, baselines, args.threshold)
    markdown = render_markdown(rows, args.threshold)
    payload = {
        "threshold": args.threshold,
        "rows": rows,
        "problems": problems,
    }
    if args.out_md is not None:
        args.out_md.parent.mkdir(parents=True, exist_ok=True)
        args.out_md.write_text(markdown)
    if args.out_json is not None:
        args.out_json.parent.mkdir(parents=True, exist_ok=True)
        args.out_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if args.out_md is None and args.out_json is None and not args.check:
        print(markdown)
    if args.record:
        written = record_history(history_path, current, args.recorded)
        print(f"recorded {written} history line(s) -> {history_path}")
    for problem in problems:
        print(problem, file=sys.stderr)
    regressions = [r for r in rows if r["status"] == "regression"]
    if args.check:
        for row in regressions:
            print(
                f"REGRESSION {row['bench']} {row['metric']}: baseline "
                f"{row['baseline']} -> current {row['current']} "
                f"({row['change_pct']:+.1f}%, good={row['good']})",
                file=sys.stderr,
            )
        stale = [r for r in rows if r["status"] == "stale"]
        for row in stale:
            print(
                f"note (not failing) {row['bench']} {row['metric']}: "
                f"{row['change_pct']:+.1f}% but {row['notes'][0]}",
                file=sys.stderr,
            )
        verdict = "FAILED" if regressions or problems else "OK"
        print(
            f"bench check {verdict}: {len(regressions)} regression(s), "
            f"{len(stale)} stale-cpu note(s), {len(rows)} metric(s)"
        )
    return 1 if (args.check and (regressions or problems)) or (
        not args.check and problems
    ) else 0


if __name__ == "__main__":
    raise SystemExit(main())
